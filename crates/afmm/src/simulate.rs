use crate::balance::{lbtime, LbConfig, LbState, LoadBalancer, Strategy};
use crate::config::{FmmParams, HeteroNode};
use crate::cost::CostModel;
use crate::engine::FmmEngine;
use crate::error::Error;
use crate::filter::TimingFilter;
use fmm_math::{GravityKernel, Kernel, OpFlops, StokesletKernel};
use geom::Vec3;
use gpu_sim::{FaultEvent, FaultSchedule};
use nbody::Bodies;

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Uniform in the open interval (0, 1).
fn unit_open(state: &mut u64) -> f64 {
    ((splitmix64(state) >> 11) as f64 + 0.5) / (1u64 << 53) as f64
}

/// Deterministic lognormal multiplier `exp(σ·Z)`, `Z ~ N(0,1)` via
/// Box–Muller — the multiplicative timing jitter of real measurements.
fn lognormal(state: &mut u64, sigma: f64) -> f64 {
    let u1 = unit_open(state);
    let u2 = unit_open(state);
    let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
    (sigma * z).exp()
}

/// Everything recorded about one simulated time step — the per-step series
/// behind the paper's Figs 8–10 and Table II.
#[derive(Clone, Copy, Debug)]
pub struct StepRecord {
    pub step: usize,
    /// Leaf capacity the tree enforced *during* this step (Fig 9's series).
    pub s: usize,
    /// Balancer state during the step.
    pub state: LbState,
    pub t_cpu: f64,
    pub t_gpu: f64,
    /// Modeled time of all load-balancing / maintenance work after the step.
    pub t_lb: f64,
    /// Whole-GPU-system SIMT efficiency (1.0 on CPU-only nodes).
    pub gpu_efficiency: f64,
    pub p2p_interactions: u64,
    pub m2l_ops: u64,
}

impl StepRecord {
    /// The paper's compute time: `max(CPU, GPU)`.
    pub fn compute(&self) -> f64 {
        self.t_cpu.max(self.t_gpu)
    }

    /// Total step time: compute plus load balancing.
    pub fn total(&self) -> f64 {
        self.compute() + self.t_lb
    }
}

/// Aggregates over a run — the rows of the paper's Table II.
#[derive(Clone, Copy, Debug, Default)]
pub struct RunSummary {
    pub steps: usize,
    /// Σ compute time.
    pub total_compute: f64,
    /// Σ LB time.
    pub total_lb: f64,
    /// Mean total (compute + LB) per step.
    pub mean_total_per_step: f64,
    /// Largest single-step LB time.
    pub max_lb_step: f64,
    /// Largest single-step compute time.
    pub max_compute_step: f64,
}

impl RunSummary {
    /// Aggregate a run; empty input yields the all-zero summary (never NaN).
    pub fn from_records(records: &[StepRecord]) -> Self {
        if records.is_empty() {
            return RunSummary::default();
        }
        let steps = records.len();
        let total_compute: f64 = records.iter().map(StepRecord::compute).sum();
        let total_lb: f64 = records.iter().map(|r| r.t_lb).sum();
        RunSummary {
            steps,
            total_compute,
            total_lb,
            mean_total_per_step: (total_compute + total_lb) / steps as f64,
            max_lb_step: records.iter().map(|r| r.t_lb).fold(0.0, f64::max),
            max_compute_step: records.iter().map(StepRecord::compute).fold(0.0, f64::max),
        }
    }

    /// LB time as a fraction of compute time (Table II's "LB as % of
    /// Compute" divided by 100).
    pub fn lb_fraction(&self) -> f64 {
        if self.total_compute > 0.0 {
            self.total_lb / self.total_compute
        } else {
            0.0
        }
    }
}

/// Replays a shared body trajectory through one load-balancing strategy,
/// producing that strategy's timing series without re-solving the physics.
///
/// The paper runs each strategy as its own simulation; since the three runs
/// evolve (numerically near-identical) trajectories and differ only in
/// decomposition bookkeeping, the reproduction computes the trajectory once
/// and feeds the same positions to one tracker per strategy. Each tracker
/// owns its own tree, cost model and balancer, so the timing dynamics —
/// which is what Figs 8/9 and Table II report — are produced by exactly the
/// paper's machinery.
pub struct StrategyTracker<K: Kernel> {
    engine: FmmEngine<K>,
    flops: OpFlops,
    model: CostModel,
    balancer: LoadBalancer,
    node: HeteroNode,
    records: Vec<StepRecord>,
    first: bool,
    /// Injected disturbances, keyed by step index (see [`FaultSchedule`]).
    faults: FaultSchedule,
    /// Current external-CPU-load multiplier on measured CPU time.
    cpu_load: f64,
    /// Lognormal σ of the measurement jitter (0 = exact measurements).
    noise_sigma: f64,
    noise_state: u64,
    filter_cpu: TimingFilter,
    filter_gpu: TimingFilter,
    rec: telemetry::Recorder,
    /// Rolling prediction-vs-actual audit of the cost model (tentpole §3).
    audits: telemetry::AuditTrail,
    /// Online anomaly detector over step time and prediction error.
    /// Observe-only: it never feeds back into the balancer, and it is only
    /// consulted when the recorder is enabled.
    detector: telemetry::AnomalyDetector,
    /// Anomalies detected so far, with the step they fired on.
    anomalies: Vec<(usize, telemetry::Anomaly)>,
}

impl<K: Kernel> StrategyTracker<K> {
    pub fn new(
        kernel: K,
        params: FmmParams,
        node: HeteroNode,
        strategy: Strategy,
        cfg: LbConfig,
        pos0: &[Vec3],
        domain: Option<(Vec3, f64)>,
    ) -> Self {
        let balancer = LoadBalancer::new(strategy, cfg);
        let s0 = balancer.s();
        let engine = match domain {
            Some((c, hw)) => FmmEngine::with_domain(kernel, params, pos0, s0, c, hw),
            None => FmmEngine::new(kernel, params, pos0, s0),
        };
        let flops = engine.kernel.op_flops(engine.expansion_ops());
        StrategyTracker {
            engine,
            flops,
            model: CostModel::new(),
            balancer,
            node,
            records: Vec::new(),
            first: true,
            faults: FaultSchedule::new(),
            cpu_load: 1.0,
            noise_sigma: 0.0,
            noise_state: 0x5DEE_CE66_D158_1F86,
            filter_cpu: TimingFilter::default(),
            filter_gpu: TimingFilter::default(),
            rec: telemetry::Recorder::disabled(),
            audits: telemetry::AuditTrail::new(),
            detector: telemetry::AnomalyDetector::new(),
            anomalies: Vec::new(),
        }
    }

    /// Like [`StrategyTracker::new`], but with a telemetry recorder wired
    /// through the whole stack: the engine (solve spans, plan counters), the
    /// balancer (state-transition flight recorder) and the tracker itself
    /// (per-step metrics, phase spans, prediction audits).
    #[allow(clippy::too_many_arguments)]
    pub fn with_telemetry(
        kernel: K,
        params: FmmParams,
        node: HeteroNode,
        strategy: Strategy,
        cfg: LbConfig,
        pos0: &[Vec3],
        domain: Option<(Vec3, f64)>,
        rec: telemetry::Recorder,
    ) -> Self {
        let mut tracker = Self::new(kernel, params, node, strategy, cfg, pos0, domain);
        tracker.set_recorder(rec);
        tracker
    }

    /// Attach a recorder after construction; shared (via clone) with the
    /// engine, its execution plan and the balancer. Emits a `run.config`
    /// header event so offline replay knows the bounds and thresholds the
    /// balancer was configured with.
    pub fn set_recorder(&mut self, rec: telemetry::Recorder) {
        self.engine.set_recorder(rec.clone());
        self.balancer.set_recorder(rec.clone());
        if rec.is_enabled() {
            let cfg = &self.balancer.cfg;
            rec.event(
                "run.config",
                vec![
                    (
                        "strategy",
                        telemetry::Value::Str(self.balancer.strategy().name().into()),
                    ),
                    ("s_min", telemetry::Value::U64(cfg.s_min as u64)),
                    ("s_max", telemetry::Value::U64(cfg.s_max as u64)),
                    ("eps_switch_s", telemetry::Value::F64(cfg.eps_switch_s)),
                    (
                        "regression_frac",
                        telemetry::Value::F64(cfg.regression_frac),
                    ),
                    ("use_fgo", telemetry::Value::Bool(cfg.use_fgo)),
                    (
                        "regression_hysteresis",
                        telemetry::Value::U64(cfg.regression_hysteresis as u64),
                    ),
                    ("incr_factor", telemetry::Value::F64(cfg.incr_factor)),
                    (
                        "phase_tolerance",
                        telemetry::Value::F64(self.engine.exec_policy().phase_tolerance),
                    ),
                ],
            );
        }
        self.rec = rec;
    }

    /// The tracker's telemetry handle.
    pub fn recorder(&self) -> &telemetry::Recorder {
        &self.rec
    }

    /// The rolling prediction-vs-actual audit trail.
    pub fn audits(&self) -> &telemetry::AuditTrail {
        &self.audits
    }

    /// Anomalies the online detector has flagged so far, with the step each
    /// fired on. Empty unless the tracker runs with an enabled recorder.
    pub fn anomalies(&self) -> &[(usize, telemetry::Anomaly)] {
        &self.anomalies
    }

    /// Install the fault schedule; events fire at the start of the step
    /// whose index matches their `step` field.
    pub fn set_fault_schedule(&mut self, faults: FaultSchedule) {
        self.faults = faults;
    }

    /// Set the execution policy the tracked engine schedules its virtual
    /// solves under (Barrier oracle vs dependency-driven Dag). Physics is
    /// unaffected; only the timing model changes. Emits an `exec.policy`
    /// event so trace consumers (the replay validator's phase-tolerance
    /// lookup in particular) see the policy the subsequent steps ran under,
    /// even when it changes after the `run.config` header.
    pub fn set_exec_policy(&mut self, policy: crate::ExecPolicy) {
        self.engine.set_exec_policy(policy);
        if self.rec.is_enabled() {
            self.rec.event(
                "exec.policy",
                vec![
                    (
                        "mode",
                        telemetry::Value::Str(
                            match policy.mode {
                                crate::SchedMode::Barrier => "barrier",
                                crate::SchedMode::Dag => "dag",
                            }
                            .into(),
                        ),
                    ),
                    ("offload_pl", telemetry::Value::Bool(policy.offload_pl)),
                    ("trace", telemetry::Value::Bool(policy.trace)),
                    (
                        "phase_tolerance",
                        telemetry::Value::F64(policy.phase_tolerance),
                    ),
                ],
            );
        }
    }

    /// The virtual node as disturbed so far (device status included).
    pub fn node(&self) -> &HeteroNode {
        &self.node
    }

    /// Apply every fault event scheduled for `step_idx` to the tracked node.
    fn apply_faults(&mut self, step_idx: usize) -> Result<(), Error> {
        let due: Vec<FaultEvent> = self.faults.events_at(step_idx).copied().collect();
        for ev in due {
            match ev {
                FaultEvent::ExternalCpuLoad { factor } => {
                    if !factor.is_finite() || factor <= 0.0 {
                        return Err(gpu_sim::Error::BadFactor { factor }.into());
                    }
                    self.cpu_load = factor;
                }
                FaultEvent::TimingNoise { sigma } => {
                    if !sigma.is_finite() || sigma < 0.0 {
                        return Err(gpu_sim::Error::BadFactor { factor: sigma }.into());
                    }
                    self.noise_sigma = sigma;
                }
                _ => {
                    let gpus = self
                        .node
                        .gpus
                        .as_mut()
                        .ok_or(Error::Gpu(gpu_sim::Error::NoGpus))?;
                    gpus.apply_event(&ev)?;
                }
            }
        }
        Ok(())
    }

    /// Advance one step at the given positions: fire scheduled faults,
    /// re-bin moved bodies, time the solve on the (possibly degraded)
    /// virtual node, and feed the balancer *filtered* measurements.
    pub fn step(&mut self, pos: &[Vec3]) -> Result<StepRecord, Error> {
        let step_idx = self.records.len();
        self.rec.set_step(step_idx as u64);
        self.apply_faults(step_idx)?;
        let mut t_lb = 0.0;
        if !self.first {
            self.engine.rebin(pos);
            t_lb += lbtime::rebin(&self.node, pos.len());
        }
        self.first = false;
        let state = self.balancer.state();
        let s = self.engine.tree().s_value();
        let counts = self.engine.refresh_lists();
        // Predict with the model as trained through the *previous* step, on
        // this step's op counts — the forecast the balancer would steer by —
        // so the audit compares it against what this step actually took.
        let predicted = (self.rec.is_enabled() && self.model.is_observed())
            .then(|| self.model.predict(&counts, &self.node));
        let timing = self.engine.time_step(&self.flops, &self.node)?;
        self.model
            .observe(&counts, &timing, &self.flops, &self.node);
        // Disturb the *measurements* (not the model's view of the machine):
        // external CPU load stretches wall-clock CPU time; timing noise
        // jitters both sides multiplicatively.
        let mut t_cpu = timing.t_cpu * self.cpu_load;
        let mut t_gpu = timing.t_gpu;
        if self.noise_sigma > 0.0 {
            t_cpu *= lognormal(&mut self.noise_state, self.noise_sigma);
            t_gpu *= lognormal(&mut self.noise_state, self.noise_sigma);
        }
        if !t_cpu.is_finite() || !t_gpu.is_finite() {
            return Err(Error::NonFiniteTiming { t_cpu, t_gpu });
        }
        // The balancer steers by outlier-filtered times so a lone spike
        // cannot fire its regression trigger.
        let rejected_before = self.filter_rejected();
        let f_cpu = self.filter_cpu.push(t_cpu);
        let f_gpu = self.filter_gpu.push(t_gpu);
        let rejected_delta = self.filter_rejected() - rejected_before;
        if rejected_delta > 0 && self.rec.is_enabled() {
            self.rec.counter_add("filter.rejected", rejected_delta);
        }
        let rep =
            self.balancer
                .post_step(&mut self.engine, &self.model, &self.node, pos, f_cpu, f_gpu);
        let acted = rep.rebuilt || rep.enforced || rep.fgo_rounds > 0;
        if acted {
            // The decomposition changed: historic samples time a dead tree.
            self.filter_cpu.reset();
            self.filter_gpu.reset();
        }
        t_lb += rep.lb_time;
        let mut audit_rel_error = None;
        if let Some(pred) = predicted {
            let audit = pred.audit(step_idx as u64, &timing, acted);
            audit_rel_error = Some(audit.rel_error());
            if self.rec.is_enabled() {
                self.rec.event(
                    "audit.prediction",
                    vec![
                        ("pred_total", audit.pred_total().into()),
                        ("actual_total", audit.actual_total().into()),
                        ("rel_error", audit.rel_error().into()),
                        ("acted", acted.into()),
                    ],
                );
                self.rec.hist_record("audit.rel_error", audit.rel_error());
            }
            self.audits.push(audit);
        }
        if self.rec.is_enabled() {
            // Online anomaly detection, observe-only. A step on which the
            // balancer acted moved the timing level on purpose, so the
            // baseline is void (the same rule the TimingFilter applies);
            // otherwise both monitored series get this step's sample.
            if acted {
                self.detector.reset();
            } else {
                let mut found = Vec::new();
                if let Some(a) = self.detector.observe_step_time(t_cpu.max(t_gpu)) {
                    found.push(a);
                }
                if let Some(rel) = audit_rel_error {
                    if let Some(a) = self.detector.observe_pred_error(rel) {
                        found.push(a);
                    }
                }
                for a in found {
                    self.rec.event(a.channel.event_name(), a.fields());
                    self.rec.counter_add("anomaly.count", 1);
                    self.anomalies.push((step_idx, a));
                }
            }
            crate::exec::record_phase_spans(&self.rec, &counts, &self.flops, &self.node, &timing);
            if let Some(xray) = timing.sched.as_deref() {
                crate::exec::record_sched_xray(&self.rec, xray);
            }
            if let Some(gpu) = timing.gpu.as_ref() {
                gpu.record_metrics(&self.rec);
            }
            let tree = self.engine.tree();
            self.rec.gauge_set("tree.depth", tree.depth() as f64);
            self.rec
                .gauge_set("tree.leaves", tree.active_leaves().len() as f64);
            self.rec.gauge_set("tree.s", s as f64);
            self.rec.hist_record("step.t_cpu", t_cpu);
            self.rec.hist_record("step.t_gpu", t_gpu);
            self.rec.hist_record("step.t_lb", t_lb);
            // Per-step summary event: the replay validator's (and the Chrome
            // exporter's S-counter-track's) per-step anchor. `state` and `s`
            // describe the step as it ran — i.e. *before* any transition the
            // balancer made in post_step above.
            let mut step_fields = vec![
                ("s", telemetry::Value::U64(s as u64)),
                ("state", telemetry::Value::Str(state.name().into())),
                ("t_cpu", telemetry::Value::F64(t_cpu)),
                ("t_gpu", telemetry::Value::F64(t_gpu)),
                ("t_lb", telemetry::Value::F64(t_lb)),
                ("acted", telemetry::Value::Bool(acted)),
                (
                    "online_gpus",
                    telemetry::Value::U64(self.node.num_online_gpus() as u64),
                ),
                // The *undisturbed* scheduler makespan (no external-load
                // stretch, no noise): the anchor the replay validator
                // reconciles the per-phase spans against, which are
                // likewise derived from undisturbed timing.
                ("t_sched", telemetry::Value::F64(timing.t_cpu)),
            ];
            // Scheduler X-ray summary (Dag mode with tracing on): the
            // step-level pipelining gauges.
            if let Some(xray) = timing.sched.as_deref() {
                step_fields.push((
                    "critpath_len",
                    telemetry::Value::U64(xray.analysis.crit_path.len() as u64),
                ));
                step_fields.push((
                    "lane_idle_frac",
                    telemetry::Value::F64(xray.analysis.lane_idle_frac),
                ));
                step_fields.push((
                    "pipeline_overlap",
                    telemetry::Value::F64(xray.analysis.pipeline_overlap),
                ));
            }
            self.rec.event("step.record", step_fields);
        }
        let rec = StepRecord {
            step: step_idx,
            s,
            state,
            t_cpu,
            t_gpu,
            t_lb,
            gpu_efficiency: timing.gpu_efficiency(),
            p2p_interactions: counts.p2p_interactions,
            m2l_ops: counts.m2l_ops,
        };
        self.records.push(rec);
        Ok(rec)
    }

    pub fn records(&self) -> &[StepRecord] {
        &self.records
    }

    pub fn summary(&self) -> RunSummary {
        RunSummary::from_records(&self.records)
    }

    pub fn balancer(&self) -> &LoadBalancer {
        &self.balancer
    }

    pub fn engine(&self) -> &FmmEngine<K> {
        &self.engine
    }

    /// Mutable engine access for the chaos harness's corruption hooks and
    /// the supervisor's healing rungs.
    pub fn engine_mut(&mut self) -> &mut FmmEngine<K> {
        &mut self.engine
    }

    /// Total garbage (NaN/inf/negative) timing samples the filters have
    /// skipped so far.
    pub fn filter_rejected(&self) -> u64 {
        self.filter_cpu.rejected() + self.filter_gpu.rejected()
    }

    // ---- resilience: checkpoint / restore / healing ----

    /// Serialize the complete tracker state — engine, cost model, balancer,
    /// filters, fault script, device status, noise RNG, step history and the
    /// current positions — as checkpoint text ([`crate::checkpoint`]).
    pub fn checkpoint(&self, pos: &[Vec3]) -> String {
        let snap = crate::checkpoint::TrackerSnapshot {
            engine: self.engine.checkpoint_state(),
            model: self.model,
            balancer: self.balancer.snapshot(),
            records: self.records.clone(),
            first: self.first,
            faults: self.faults.clone(),
            gpu_status: self.node.gpus.as_ref().map(|g| g.statuses().to_vec()),
            cpu_load: self.cpu_load,
            noise_sigma: self.noise_sigma,
            noise_state: self.noise_state,
            filter_cpu: self.filter_cpu.snapshot(),
            filter_gpu: self.filter_gpu.snapshot(),
            pos: pos.to_vec(),
        };
        crate::checkpoint::tracker_to_json(&snap)
    }

    /// Rebuild a tracker from checkpoint text. The caller supplies the
    /// *configuration* — the (stateless) kernel and the node as configured —
    /// and the checkpoint supplies every piece of *state*, including the
    /// device statuses the fault script had produced and the body positions
    /// at checkpoint time (returned alongside, so a driver whose live buffer
    /// was corrupted can resume from a known-good trajectory point).
    ///
    /// A restored tracker continues **bit-identically** with the run it was
    /// captured from: interaction lists come back verbatim, the noise RNG
    /// state and filter windows are exact, and all floats round-trip by bit
    /// pattern. Telemetry (recorder, audits, anomaly detector) restarts
    /// fresh — it observes the trajectory but never feeds back into it.
    pub fn restore(
        kernel: K,
        mut node: HeteroNode,
        text: &str,
    ) -> Result<(Self, Vec<Vec3>), Error> {
        let snap = crate::checkpoint::tracker_from_json(text)?;
        let engine = FmmEngine::restore_state(kernel, snap.engine)?;
        if snap.pos.len() != engine.tree().num_bodies() {
            return Err(Error::Checkpoint(format!(
                "checkpoint has {} positions but its tree holds {} bodies",
                snap.pos.len(),
                engine.tree().num_bodies()
            )));
        }
        match (&snap.gpu_status, node.gpus.as_mut()) {
            (Some(saved), Some(gpus)) => gpus.restore_statuses(saved)?,
            (Some(_), None) => {
                return Err(Error::Checkpoint(
                    "checkpoint carries GPU status but the restore node has no GPUs".into(),
                ))
            }
            (None, Some(_)) => {
                return Err(Error::Checkpoint(
                    "checkpoint is CPU-only but the restore node has GPUs".into(),
                ))
            }
            (None, None) => {}
        }
        let flops = engine.kernel.op_flops(engine.expansion_ops());
        let tracker = StrategyTracker {
            engine,
            flops,
            model: snap.model,
            balancer: LoadBalancer::from_snapshot(snap.balancer),
            node,
            records: snap.records,
            first: snap.first,
            faults: snap.faults,
            cpu_load: snap.cpu_load,
            noise_sigma: snap.noise_sigma,
            noise_state: snap.noise_state,
            filter_cpu: TimingFilter::from_snapshot(snap.filter_cpu),
            filter_gpu: TimingFilter::from_snapshot(snap.filter_gpu),
            rec: telemetry::Recorder::disabled(),
            audits: telemetry::AuditTrail::new(),
            detector: telemetry::AnomalyDetector::new(),
            anomalies: Vec::new(),
        };
        Ok((tracker, snap.pos))
    }

    /// Healing rung: throw away the (possibly corrupted) tree and plan and
    /// re-derive both from the given positions at the balancer's current S.
    /// The decomposition changes, so the timing filters are reset exactly as
    /// they are after any balancer-driven rebuild.
    pub fn heal_rebuild(&mut self, pos: &[Vec3]) {
        let s = self.balancer.s();
        self.engine.rebuild(pos, s);
        self.filter_cpu.reset();
        self.filter_gpu.reset();
    }

    /// Last-line degradation: drop the GPU system and run everything —
    /// including P2P — on the CPU cores. The balancer sees the device count
    /// change and re-optimizes S for the new machine. Irreversible for this
    /// tracker; a later restore from checkpoint brings the GPUs back.
    pub fn force_cpu_only(&mut self) {
        self.node.gpus = None;
        self.filter_cpu.reset();
        self.filter_gpu.reset();
    }
}

/// A fully numeric gravitational simulation on the heterogeneous node:
/// each step solves the AFMM (exact physics), integrates the bodies
/// (semi-implicit Euler, the per-step-force variant of leapfrog), and runs
/// the balancer's maintenance — the paper's end-to-end loop.
pub struct GravitySim {
    pub bodies: Bodies,
    pub g: f64,
    pub dt: f64,
    engine: FmmEngine<GravityKernel>,
    flops: OpFlops,
    model: CostModel,
    balancer: LoadBalancer,
    node: HeteroNode,
    records: Vec<StepRecord>,
}

impl GravitySim {
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        bodies: Bodies,
        g: f64,
        dt: f64,
        softening: f64,
        params: FmmParams,
        node: HeteroNode,
        strategy: Strategy,
        cfg: LbConfig,
        domain: Option<(Vec3, f64)>,
    ) -> Self {
        bodies.validate().expect("invalid body set");
        let balancer = LoadBalancer::new(strategy, cfg);
        let s0 = balancer.s();
        let kernel = GravityKernel::new(softening);
        let engine = match domain {
            Some((c, hw)) => FmmEngine::with_domain(kernel, params, &bodies.pos, s0, c, hw),
            None => FmmEngine::new(kernel, params, &bodies.pos, s0),
        };
        let flops = engine.kernel.op_flops(engine.expansion_ops());
        GravitySim {
            bodies,
            g,
            dt,
            engine,
            flops,
            model: CostModel::new(),
            balancer,
            node,
            records: Vec::new(),
        }
    }

    /// One full time step: solve, integrate, maintain.
    pub fn step(&mut self) -> Result<StepRecord, Error> {
        let state = self.balancer.state();
        let s = self.engine.tree().s_value();
        let sol = self.engine.try_solve(&self.bodies.pos, &self.bodies.mass)?;
        let counts = self.engine.counts();
        let timing = self.engine.time_step(&self.flops, &self.node)?;
        self.model
            .observe(&counts, &timing, &self.flops, &self.node);

        // Semi-implicit Euler: kick with the fresh forces, then drift.
        let (g, dt) = (self.g, self.dt);
        for i in 0..self.bodies.len() {
            self.bodies.vel[i] += sol.field[i] * (g * dt);
            let v = self.bodies.vel[i];
            self.bodies.pos[i] += v * dt;
        }

        // Maintenance for the next step (paper: after the position update).
        let mut t_lb = lbtime::rebin(&self.node, self.bodies.len());
        self.engine.rebin(&self.bodies.pos);
        let rep = self.balancer.post_step(
            &mut self.engine,
            &self.model,
            &self.node,
            &self.bodies.pos,
            timing.t_cpu,
            timing.t_gpu,
        );
        t_lb += rep.lb_time;

        let rec = StepRecord {
            step: self.records.len(),
            s,
            state,
            t_cpu: timing.t_cpu,
            t_gpu: timing.t_gpu,
            t_lb,
            gpu_efficiency: timing.gpu_efficiency(),
            p2p_interactions: counts.p2p_interactions,
            m2l_ops: counts.m2l_ops,
        };
        self.records.push(rec);
        Ok(rec)
    }

    pub fn positions(&self) -> &[Vec3] {
        &self.bodies.pos
    }

    pub fn records(&self) -> &[StepRecord] {
        &self.records
    }

    pub fn summary(&self) -> RunSummary {
        RunSummary::from_records(&self.records)
    }

    pub fn engine(&self) -> &FmmEngine<GravityKernel> {
        &self.engine
    }

    pub fn balancer(&self) -> &LoadBalancer {
        &self.balancer
    }
}

/// A numeric Stokes-flow simulation: point forces drive regularized-
/// Stokeslet velocities, and the force points advect with the flow. Used by
/// the immersed-boundary example; forces are refreshed by the caller each
/// step (e.g. from an elastic structure).
pub struct StokesSim {
    pub pos: Vec<Vec3>,
    pub dt: f64,
    engine: FmmEngine<StokesletKernel>,
    flops: OpFlops,
    model: CostModel,
    balancer: LoadBalancer,
    node: HeteroNode,
    records: Vec<StepRecord>,
}

impl StokesSim {
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        pos: Vec<Vec3>,
        dt: f64,
        epsilon: f64,
        mu: f64,
        params: FmmParams,
        node: HeteroNode,
        strategy: Strategy,
        cfg: LbConfig,
    ) -> Self {
        let balancer = LoadBalancer::new(strategy, cfg);
        let s0 = balancer.s();
        let kernel = StokesletKernel::new(epsilon, mu);
        let engine = FmmEngine::new(kernel, params, &pos, s0);
        let flops = engine.kernel.op_flops(engine.expansion_ops());
        StokesSim {
            pos,
            dt,
            engine,
            flops,
            model: CostModel::new(),
            balancer,
            node,
            records: Vec::new(),
        }
    }

    /// One step driven by the given per-point forces (flat, 3 per point).
    /// Returns the record and leaves the advected positions in `self.pos`.
    pub fn step(&mut self, forces: &[f64]) -> Result<StepRecord, Error> {
        let state = self.balancer.state();
        let s = self.engine.tree().s_value();
        let sol = self.engine.try_solve(&self.pos, forces)?;
        let counts = self.engine.counts();
        let timing = self.engine.time_step(&self.flops, &self.node)?;
        self.model
            .observe(&counts, &timing, &self.flops, &self.node);

        for (p, &u) in self.pos.iter_mut().zip(&sol.field) {
            *p += u * self.dt;
        }

        let mut t_lb = lbtime::rebin(&self.node, self.pos.len());
        self.engine.rebin(&self.pos);
        let rep = self.balancer.post_step(
            &mut self.engine,
            &self.model,
            &self.node,
            &self.pos,
            timing.t_cpu,
            timing.t_gpu,
        );
        t_lb += rep.lb_time;

        let rec = StepRecord {
            step: self.records.len(),
            s,
            state,
            t_cpu: timing.t_cpu,
            t_gpu: timing.t_gpu,
            t_lb,
            gpu_efficiency: timing.gpu_efficiency(),
            p2p_interactions: counts.p2p_interactions,
            m2l_ops: counts.m2l_ops,
        };
        self.records.push(rec);
        Ok(rec)
    }

    /// The velocities of the most recent solve can be recovered by solving
    /// again; for workflows needing them, use [`FmmEngine::solve`] directly.
    pub fn records(&self) -> &[StepRecord] {
        &self.records
    }

    pub fn summary(&self) -> RunSummary {
        RunSummary::from_records(&self.records)
    }

    pub fn engine(&self) -> &FmmEngine<StokesletKernel> {
        &self.engine
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nbody::{collapsing_plummer, plummer, total_energy, total_momentum};

    fn small_cfg() -> LbConfig {
        LbConfig {
            eps_switch_s: 2e-3,
            ..Default::default()
        }
    }

    #[test]
    fn gravity_sim_conserves_reasonably() {
        let b = plummer(400, 1.0, 1.0, 501);
        let e0 = total_energy(&b, 1.0, 0.05).total();
        let p0 = total_momentum(&b);
        let mut sim = GravitySim::new(
            b,
            1.0,
            0.002,
            0.05,
            FmmParams {
                order: 5,
                ..Default::default()
            },
            HeteroNode::system_a(10, 2),
            Strategy::Full,
            small_cfg(),
            None,
        );
        for _ in 0..50 {
            sim.step().unwrap();
        }
        let e1 = total_energy(&sim.bodies, 1.0, 0.05).total();
        let p1 = total_momentum(&sim.bodies);
        assert!(
            ((e1 - e0) / e0).abs() < 0.05,
            "energy drift {} -> {}",
            e0,
            e1
        );
        assert!((p1 - p0).norm() < 1e-3, "momentum drift {:?}", p1 - p0);
    }

    #[test]
    fn tracker_produces_consistent_records() {
        let setup = collapsing_plummer(2000, 1.0, 502);
        let mut tracker = StrategyTracker::new(
            fmm_math::GravityKernel::default(),
            FmmParams::default(),
            HeteroNode::system_a(10, 2),
            Strategy::Full,
            small_cfg(),
            &setup.bodies.pos,
            Some((setup.domain_center, setup.domain_half_width)),
        );
        // Feed a slowly contracting trajectory.
        let mut pos = setup.bodies.pos.clone();
        for i in 0..30 {
            let rec = tracker.step(&pos).unwrap();
            assert_eq!(rec.step, i);
            assert!(rec.t_cpu >= 0.0 && rec.t_gpu >= 0.0 && rec.t_lb >= 0.0);
            assert!(rec.compute() > 0.0);
            assert!(rec.s >= 1);
            for p in &mut pos {
                *p *= 0.995;
            }
        }
        let summary = tracker.summary();
        assert_eq!(summary.steps, 30);
        assert!(summary.total_compute > 0.0);
        assert!(summary.lb_fraction() >= 0.0);
    }

    #[test]
    fn tracker_applies_scheduled_faults() {
        let b = plummer(1500, 1.0, 1.0, 506);
        let mut tracker = StrategyTracker::new(
            fmm_math::GravityKernel::default(),
            FmmParams::default(),
            HeteroNode::system_a(10, 2),
            Strategy::Full,
            small_cfg(),
            &b.pos,
            None,
        );
        let faults = FaultSchedule::new()
            .with(2, FaultEvent::TimingNoise { sigma: 0.05 })
            .with(3, FaultEvent::ExternalCpuLoad { factor: 2.0 })
            .with(5, FaultEvent::GpuDropout { device: 1 })
            .with(8, FaultEvent::GpuRecover { device: 1 });
        tracker.set_fault_schedule(faults);
        for i in 0..10 {
            let rec = tracker.step(&b.pos).unwrap();
            assert!(rec.t_cpu.is_finite() && rec.t_gpu.is_finite());
            let online = tracker.node().num_online_gpus();
            if (5..8).contains(&i) {
                assert_eq!(online, 1, "device 1 offline during steps 5..8");
            } else {
                assert_eq!(online, 2, "both devices online at step {i}");
            }
        }
    }

    #[test]
    fn tracker_rejects_invalid_fault_parameters() {
        let b = plummer(500, 1.0, 1.0, 507);
        let mut tracker = StrategyTracker::new(
            fmm_math::GravityKernel::default(),
            FmmParams::default(),
            HeteroNode::system_a(4, 1),
            Strategy::Full,
            small_cfg(),
            &b.pos,
            None,
        );
        tracker.set_fault_schedule(
            FaultSchedule::new().with(0, FaultEvent::ExternalCpuLoad { factor: -1.0 }),
        );
        assert!(
            tracker.step(&b.pos).is_err(),
            "negative load factor must error"
        );
    }

    #[test]
    fn full_strategy_beats_static_on_concentrating_workload() {
        // The core claim of the paper's §IX.A at reduced scale: when the
        // dense region migrates out from under the frozen tree's fine cells,
        // the frozen-S strategy's near-field work blows up while the full
        // balancer re-decomposes and stays fast.
        // Timing-only trackers, so a near-experiment scale is affordable;
        // below ~15k bodies the virtual GPUs are so oversized that even a
        // fully degenerate (all-pairs) decomposition stays fast and the
        // strategies cannot separate.
        let setup = collapsing_plummer(20000, 1.0, 503);
        let node = HeteroNode::system_a(10, 2);
        let mk = |strategy| {
            StrategyTracker::new(
                fmm_math::GravityKernel::default(),
                FmmParams::default(),
                node.clone(),
                strategy,
                small_cfg(),
                &setup.bodies.pos,
                Some((setup.domain_center, setup.domain_half_width)),
            )
        };
        let mut t1 = mk(Strategy::StaticS);
        let mut t3 = mk(Strategy::Full);
        // The cloud contracts toward an off-center point (where the initial
        // adaptive tree is coarse), stopping while still extended — the
        // non-self-similar density evolution the paper's collapse produces.
        let clump = geom::Vec3::new(8.0, 8.0, 8.0);
        let mut pos = setup.bodies.pos.clone();
        let mut late_static = 0.0;
        let mut late_full = 0.0;
        for step in 0..60 {
            let r1 = t1.step(&pos).unwrap();
            let r3 = t3.step(&pos).unwrap();
            if step >= 45 {
                late_static += r1.compute();
                late_full += r3.compute();
            }
            if step < 28 {
                for p in &mut pos {
                    *p = *p + (clump - *p) * 0.05;
                }
            }
        }
        let s1 = t1.summary();
        let s3 = t3.summary();
        assert!(
            s3.mean_total_per_step < s1.mean_total_per_step,
            "full {} vs static {}",
            s3.mean_total_per_step,
            s1.mean_total_per_step
        );
        assert!(
            late_full * 1.4 < late_static,
            "settled regime: full {late_full} should be well below static {late_static}"
        );
    }

    #[test]
    fn stokes_sim_steps_and_advects() {
        let pts = nbody::uniform_cube(500, 1.0, 504);
        let forces = nbody::random_unit_forces(500, 505);
        let mut sim = StokesSim::new(
            pts.pos.clone(),
            0.01,
            1e-3,
            1.0,
            FmmParams::default(),
            HeteroNode::system_a(10, 2),
            Strategy::Full,
            small_cfg(),
        );
        let before = sim.pos.clone();
        for _ in 0..5 {
            sim.step(&forces).unwrap();
        }
        let moved = sim
            .pos
            .iter()
            .zip(&before)
            .filter(|(a, b)| (**a - **b).norm() > 0.0)
            .count();
        assert!(moved > 400, "flow should move nearly all points");
        assert_eq!(sim.records().len(), 5);
    }

    #[test]
    fn summary_math() {
        let recs = vec![
            StepRecord {
                step: 0,
                s: 32,
                state: LbState::Search,
                t_cpu: 1.0,
                t_gpu: 2.0,
                t_lb: 0.5,
                gpu_efficiency: 0.9,
                p2p_interactions: 10,
                m2l_ops: 5,
            },
            StepRecord {
                step: 1,
                s: 32,
                state: LbState::Observation,
                t_cpu: 3.0,
                t_gpu: 1.0,
                t_lb: 0.0,
                gpu_efficiency: 0.8,
                p2p_interactions: 10,
                m2l_ops: 5,
            },
        ];
        let s = RunSummary::from_records(&recs);
        assert_eq!(s.steps, 2);
        assert_eq!(s.total_compute, 5.0);
        assert_eq!(s.total_lb, 0.5);
        assert_eq!(s.max_lb_step, 0.5);
        assert_eq!(s.max_compute_step, 3.0);
        assert!((s.lb_fraction() - 0.1).abs() < 1e-15);
        assert!((s.mean_total_per_step - 2.75).abs() < 1e-15);
    }

    #[test]
    fn summary_of_empty_run_is_all_zero() {
        let s = RunSummary::from_records(&[]);
        assert_eq!(s.steps, 0);
        assert_eq!(s.total_compute, 0.0);
        assert_eq!(s.total_lb, 0.0);
        assert_eq!(s.mean_total_per_step, 0.0);
        assert_eq!(s.max_lb_step, 0.0);
        assert_eq!(s.max_compute_step, 0.0);
        assert_eq!(s.lb_fraction(), 0.0);
        assert!(
            s.mean_total_per_step.is_finite(),
            "empty summary must not produce NaN"
        );
    }

    #[test]
    fn telemetry_tracker_records_spans_and_audits() {
        let setup = collapsing_plummer(3000, 1.0, 508);
        let rec = telemetry::Recorder::enabled();
        let sink = telemetry::VecSink::new();
        rec.set_sink(sink.clone());
        let mut tracker = StrategyTracker::with_telemetry(
            fmm_math::GravityKernel::default(),
            FmmParams::default(),
            HeteroNode::system_a(10, 2),
            Strategy::Full,
            small_cfg(),
            &setup.bodies.pos,
            Some((setup.domain_center, setup.domain_half_width)),
            rec.clone(),
        );
        let mut pos = setup.bodies.pos.clone();
        for _ in 0..12 {
            tracker.step(&pos).unwrap();
            for p in &mut pos {
                *p *= 0.97;
            }
        }
        // All five far-field phases plus P2P appear as spans.
        for name in [
            "phase.p2m",
            "phase.m2m",
            "phase.m2l",
            "phase.l2l",
            "phase.l2p",
            "phase.p2p",
        ] {
            assert!(
                !rec.events_named(name).is_empty(),
                "missing phase span {name}"
            );
        }
        // The balancer's flight recorder fired (solve spans are exercised by
        // the numeric-solve path; the tracker times steps virtually).
        assert!(
            !rec.events_named("lb.transition").is_empty(),
            "a Full-strategy run must leave Search at least once"
        );
        // One audit per step once the model has observed (all but step 0).
        assert_eq!(tracker.audits().len(), 11);
        let stats = tracker.audits().stats();
        assert!(stats.count == 11 && stats.median.is_finite());
        // Events carry the logical step index and reached the sink too.
        let last = rec.events();
        assert!(last.iter().any(|e| e.step > 0));
        assert!(sink.lines().len() >= last.len());
    }

    #[test]
    fn telemetry_disabled_changes_nothing() {
        let setup = collapsing_plummer(2000, 1.0, 509);
        let mk = |rec: Option<telemetry::Recorder>| {
            let mut t = StrategyTracker::new(
                fmm_math::GravityKernel::default(),
                FmmParams::default(),
                HeteroNode::system_a(10, 2),
                Strategy::Full,
                small_cfg(),
                &setup.bodies.pos,
                Some((setup.domain_center, setup.domain_half_width)),
            );
            if let Some(rec) = rec {
                t.set_recorder(rec);
            }
            t
        };
        let mut plain = mk(None);
        let mut traced = mk(Some(telemetry::Recorder::enabled()));
        let mut pos = setup.bodies.pos.clone();
        for _ in 0..8 {
            let a = plain.step(&pos).unwrap();
            let b = traced.step(&pos).unwrap();
            assert_eq!(a.s, b.s);
            assert_eq!(a.state, b.state);
            assert_eq!(a.t_cpu.to_bits(), b.t_cpu.to_bits());
            assert_eq!(a.t_gpu.to_bits(), b.t_gpu.to_bits());
            assert_eq!(a.t_lb.to_bits(), b.t_lb.to_bits());
            for p in &mut pos {
                *p *= 0.98;
            }
        }
        assert!(
            plain.audits().is_empty(),
            "disabled telemetry must not pay for predictions"
        );
    }
}
