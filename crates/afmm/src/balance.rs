use crate::config::HeteroNode;
use crate::cost::{lbtime, CostModel, Prediction};
use crate::engine::FmmEngine;
use fmm_math::Kernel;
use octree::{NodeId, Octree};

/// The three load-balancing strategies compared in the paper's §IX.A.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Strategy {
    /// Strategy 1: optimal S chosen at the outset by binary search, then the
    /// tree structure is never modified (bodies are still re-binned).
    StaticS,
    /// Strategy 2: initial binary search; afterwards, when the compute time
    /// regresses more than 5% past the best seen, call `Enforce_S` and take
    /// the next step's time as the new best.
    EnforceOnly,
    /// Strategy 3: the full machine — Search / Incremental / Observation
    /// states with `Enforce_S` and `FineGrainedOptimize`.
    Full,
}

/// The load balancer's state (paper §V). Each state persists over multiple
/// time steps; `Frozen` is the terminal state of [`Strategy::StaticS`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LbState {
    Search,
    Incremental,
    Observation,
    Frozen,
    /// A device dropped out or came back: re-bisect S over a warm-started
    /// bracket around the last settled value (Strategy 3 only).
    Recovery,
}

impl LbState {
    pub fn name(self) -> &'static str {
        match self {
            LbState::Search => "search",
            LbState::Incremental => "incremental",
            LbState::Observation => "observation",
            LbState::Frozen => "frozen",
            LbState::Recovery => "recovery",
        }
    }
}

/// Tunables of the load balancer; defaults are the paper's values where it
/// states them (0.15 s state-switch threshold, 5% regression trigger).
#[derive(Clone, Copy, Debug)]
pub struct LbConfig {
    pub s_min: usize,
    pub s_max: usize,
    /// Leave Search / skip FGO when |t_cpu − t_gpu| is at most this (paper:
    /// 0.15 s).
    pub eps_switch_s: f64,
    /// Observation acts when compute time exceeds best by this fraction
    /// (paper: 5%).
    pub regression_frac: f64,
    /// Enable `FineGrainedOptimize` (off reproduces the paper's Fig 10
    /// baseline).
    pub use_fgo: bool,
    /// FGO batch size as a fraction of the active leaf count.
    pub fgo_batch_frac: f64,
    /// Upper bound on FGO batches per invocation.
    pub fgo_max_rounds: usize,
    /// Multiplicative S step of the Incremental state.
    pub incr_factor: f64,
    /// Incremental keeps walking while compute stays within this fraction
    /// of the walk's best — one 1.15× step often lands on a local bump
    /// (block-quantization effects) that a strict per-step comparison would
    /// mistake for the optimum.
    pub incr_tol: f64,
    /// Observation only acts after this many *consecutive* regressing steps
    /// (1 = the paper's immediate trigger). Raising it makes the balancer
    /// ignore one-off measurement spikes at the cost of reacting later.
    pub regression_hysteresis: usize,
}

impl Default for LbConfig {
    fn default() -> Self {
        LbConfig {
            s_min: 8,
            s_max: 4096,
            eps_switch_s: 0.15,
            regression_frac: 0.05,
            use_fgo: true,
            fgo_batch_frac: 0.03,
            fgo_max_rounds: 12,
            incr_factor: 1.15,
            incr_tol: 0.05,
            regression_hysteresis: 1,
        }
    }
}

/// What the balancer did after a step, and what it cost (modeled wall time,
/// charged as the paper's "LB time").
#[derive(Clone, Copy, Debug, Default)]
pub struct LbReport {
    pub lb_time: f64,
    pub rebuilt: bool,
    pub enforced: bool,
    pub fgo_rounds: usize,
}

/// The dynamic load balancer of §V–VII: a state machine driven by each
/// step's realized CPU/GPU times, steering the leaf capacity S globally
/// (Search / Incremental) and the tree locally (`Enforce_S`,
/// `FineGrainedOptimize`).
#[derive(Clone, Debug)]
pub struct LoadBalancer {
    pub cfg: LbConfig,
    strategy: Strategy,
    state: LbState,
    s: usize,
    lo: usize,
    hi: usize,
    best_compute: f64,
    /// Best (S, measured compute) of the current Incremental walk.
    incr_best: Option<(usize, f64)>,
    /// Walk direction (`true` = grow S); seeded from dominance on entry.
    incr_dir_up: Option<bool>,
    /// The one allowed direction reversal has been spent.
    incr_flipped: bool,
    /// Consecutive Observation steps past the regression limit.
    regress_count: usize,
    /// Online device count seen last step (None until a GPU node is seen).
    last_online: Option<usize>,
    /// Strategy 2: the next step's compute time becomes the new best.
    reset_best_next: bool,
}

fn geometric_mid(lo: usize, hi: usize) -> usize {
    ((lo.max(1) as f64 * hi.max(1) as f64).sqrt().round() as usize).clamp(lo, hi)
}

impl LoadBalancer {
    pub fn new(strategy: Strategy, cfg: LbConfig) -> Self {
        assert!(cfg.s_min >= 1 && cfg.s_min < cfg.s_max);
        let s = geometric_mid(cfg.s_min, cfg.s_max);
        LoadBalancer {
            cfg,
            strategy,
            state: LbState::Search,
            s,
            lo: cfg.s_min,
            hi: cfg.s_max,
            best_compute: f64::INFINITY,
            incr_best: None,
            incr_dir_up: None,
            incr_flipped: false,
            regress_count: 0,
            last_online: None,
            reset_best_next: false,
        }
    }

    pub fn strategy(&self) -> Strategy {
        self.strategy
    }

    pub fn state(&self) -> LbState {
        self.state
    }

    /// The S value the balancer currently targets.
    pub fn s(&self) -> usize {
        self.s
    }

    pub fn best_compute(&self) -> f64 {
        self.best_compute
    }

    /// Feed one completed step's realized times and let the balancer prepare
    /// the tree for the next step (possibly rebuilding at a new S, enforcing
    /// the current S, or fine-grain optimizing). `pos` must be the *updated*
    /// positions — the paper performs tree optimizations after the position
    /// update.
    pub fn post_step<K: Kernel>(
        &mut self,
        engine: &mut FmmEngine<K>,
        model: &CostModel,
        node: &HeteroNode,
        pos: &[geom::Vec3],
        t_cpu: f64,
        t_gpu: f64,
    ) -> LbReport {
        let compute = t_cpu.max(t_gpu);
        let mut rep = LbReport::default();
        if self.reset_best_next {
            self.best_compute = compute;
            self.reset_best_next = false;
        }
        // Resilience: a device dropping out (or coming back) invalidates the
        // settled balance point outright — the measurement that just arrived
        // describes a machine that no longer exists. Only the full strategy
        // reacts; StaticS/EnforceOnly are the paper's less adaptive
        // baselines and keep their decomposition.
        if let Some(gpus) = node.gpus.as_ref() {
            let now = gpus.num_online();
            let before = self.last_online.replace(now);
            if matches!(before, Some(b) if b != now)
                && self.strategy == Strategy::Full
                && self.state != LbState::Frozen
            {
                self.enter_recovery(engine, node, pos, now, &mut rep);
                return rep;
            }
        }
        match self.state {
            LbState::Frozen => {}
            LbState::Search | LbState::Recovery => {
                self.search_step(engine, node, pos, t_cpu, t_gpu, &mut rep)
            }
            LbState::Incremental => {
                self.incremental_step(engine, model, node, pos, t_cpu, t_gpu, &mut rep)
            }
            LbState::Observation => {
                self.observation_step(engine, model, node, compute, &mut rep)
            }
        }
        rep
    }

    /// React to a changed online-device count: with survivors, re-bisect S
    /// over a warm bracket around the settled value (the [`LbState::Recovery`]
    /// state, which runs the Search bisection); with none, fall back to the
    /// CPU-only plan — sweep S as the paper does for CPU-only runs and keep
    /// stepping on the cores alone.
    fn enter_recovery<K: Kernel>(
        &mut self,
        engine: &mut FmmEngine<K>,
        node: &HeteroNode,
        pos: &[geom::Vec3],
        now_online: usize,
        rep: &mut LbReport,
    ) {
        self.regress_count = 0;
        self.incr_best = None;
        self.incr_dir_up = None;
        self.incr_flipped = false;
        self.best_compute = f64::INFINITY;
        self.reset_best_next = true;
        if now_online == 0 {
            // Graceful CPU-only fallback. The sweep rebuilds the tree once
            // per probe; charge each rebuild as LB time.
            let (s, _t) = search_best_s_cpu_only(engine, node, pos, &self.cfg);
            self.s = s;
            let mut probes = 0usize;
            let mut sp = self.cfg.s_min;
            while sp <= self.cfg.s_max {
                probes += 1;
                sp = ((sp as f64 * 1.6).ceil() as usize).max(sp + 1);
            }
            rep.lb_time += probes as f64 * lbtime::rebuild(node, pos.len());
            rep.rebuilt = true;
            self.state = LbState::Observation;
            return;
        }
        // Survivors remain: warm-start the bisection on a bracket spanning
        // both sides of the settled S (the crossover may move either way
        // depending on which resource the lost/gained device relieves).
        self.lo = (self.s / 8).max(self.cfg.s_min);
        self.hi = self
            .s
            .saturating_mul(8)
            .min(self.cfg.s_max)
            .max(self.lo + 1);
        self.state = LbState::Recovery;
    }

    fn leave_search(&mut self, compute: f64) {
        self.best_compute = compute;
        self.state = match self.strategy {
            Strategy::StaticS => LbState::Frozen,
            Strategy::EnforceOnly => LbState::Observation,
            // Recovery exits the same way a cold search does: the bisection
            // only localizes the crossover, and the compute-guided walk is
            // what finds the surviving hardware's actual optimum.
            Strategy::Full => LbState::Incremental,
        };
        self.incr_best = None;
        self.incr_dir_up = None;
        self.incr_flipped = false;
        self.regress_count = 0;
    }

    fn search_step<K: Kernel>(
        &mut self,
        engine: &mut FmmEngine<K>,
        node: &HeteroNode,
        pos: &[geom::Vec3],
        t_cpu: f64,
        t_gpu: f64,
        rep: &mut LbReport,
    ) {
        let compute = t_cpu.max(t_gpu);
        let diff = (t_cpu - t_gpu).abs();
        let bracket_done = self.hi <= self.lo + self.lo / 4;
        // A node with no (online) GPUs has nothing to balance *between*: any
        // S trades CPU work against CPU work, so the state machine defers to
        // an external S sweep (see `search_best_s_cpu_only`) and freezes.
        if node.num_online_gpus() == 0 || diff <= self.cfg.eps_switch_s || bracket_done {
            self.leave_search(compute);
            return;
        }
        if t_cpu > t_gpu {
            // CPU dominates: shift work toward the GPU with a larger S.
            self.lo = self.s;
        } else {
            self.hi = self.s;
        }
        let mid = geometric_mid(self.lo, self.hi);
        if mid == self.s {
            self.leave_search(compute);
            return;
        }
        self.s = mid;
        engine.rebuild(pos, self.s);
        rep.lb_time += lbtime::rebuild(node, pos.len());
        rep.rebuilt = true;
    }

    /// The Incremental walk, steered by the *measured compute time* rather
    /// than by which side dominates. Dominance only seeds the initial
    /// direction; after that each 1.15× probe keeps walking while compute
    /// stays within `incr_tol` of the walk's best (riding over local
    /// bumps from block quantization). When a direction is exhausted —
    /// compute climbs out of the tolerance band or S pins at a bound —
    /// the walk reverses once from its best S so both sides of the start
    /// are explored, then settles at the walk's best.
    #[allow(clippy::too_many_arguments)]
    fn incremental_step<K: Kernel>(
        &mut self,
        engine: &mut FmmEngine<K>,
        model: &CostModel,
        node: &HeteroNode,
        pos: &[geom::Vec3],
        t_cpu: f64,
        t_gpu: f64,
        rep: &mut LbReport,
    ) {
        let compute = t_cpu.max(t_gpu);
        if self.incr_dir_up.is_none() {
            // CPU dominant: shift near-field work to the GPUs with larger S.
            self.incr_dir_up = Some(t_cpu >= t_gpu);
        }
        let mut exhausted = false;
        match self.incr_best {
            None => self.incr_best = Some((self.s, compute)),
            Some((_, c_best)) if compute < c_best => {
                self.incr_best = Some((self.s, compute));
            }
            Some((_, c_best)) if compute > c_best * (1.0 + self.cfg.incr_tol) => {
                // Walked off the basin in this direction.
                exhausted = true;
            }
            // Within the tolerance band of the best: keep walking through
            // the local bump.
            Some(_) => {}
        }
        let f = self.cfg.incr_factor;
        let step_from = |s: usize, up: bool| {
            if up {
                ((s as f64 * f).ceil() as usize).min(self.cfg.s_max)
            } else {
                ((s as f64 / f).floor() as usize).max(self.cfg.s_min)
            }
        };
        let mut next = step_from(self.s, self.incr_dir_up == Some(true));
        if next == self.s {
            // Pinned at a bound: this direction is exhausted too.
            exhausted = true;
        }
        if exhausted {
            if self.incr_flipped {
                // Both directions explored: settle at the walk's best.
                self.finish_incremental(engine, model, node, pos, rep);
                return;
            }
            // Reverse once, restarting the probes from the walk's best S.
            self.incr_flipped = true;
            self.incr_dir_up = self.incr_dir_up.map(|d| !d);
            let base = self.incr_best.map_or(self.s, |(s, _)| s);
            next = step_from(base, self.incr_dir_up == Some(true));
            if next == base || next == self.s {
                self.finish_incremental(engine, model, node, pos, rep);
                return;
            }
        }
        self.s = next;
        engine.rebuild(pos, self.s);
        rep.lb_time += lbtime::rebuild(node, pos.len());
        rep.rebuilt = true;
    }

    /// Exit Incremental → Observation: restore the walk's best S if the
    /// walk drifted past it, then — if CPU and GPU times still differ
    /// materially — bridge the residual gap locally with FGO. The walk's
    /// best measured compute becomes Observation's regression baseline, so
    /// the baseline is in the same (possibly disturbed) units as the
    /// measurements Observation will compare against it.
    fn finish_incremental<K: Kernel>(
        &mut self,
        engine: &mut FmmEngine<K>,
        model: &CostModel,
        node: &HeteroNode,
        pos: &[geom::Vec3],
        rep: &mut LbReport,
    ) {
        if let Some((s_best, c_best)) = self.incr_best {
            if self.s != s_best {
                self.s = s_best;
                engine.rebuild(pos, self.s);
                engine.refresh_lists();
                rep.lb_time += lbtime::rebuild(node, pos.len());
                rep.rebuilt = true;
            }
            self.best_compute = c_best;
        }
        if self.cfg.use_fgo && self.strategy == Strategy::Full {
            // Gate and verify FGO on the undisturbed virtual timing so the
            // before/after comparison is apples-to-apples even when the
            // balancer's fed measurements carry noise or external load.
            let flops = engine.kernel.op_flops(engine.expansion_ops());
            let before = crate::exec::time_step(engine.tree(), engine.lists(), &flops, node).ok();
            rep.lb_time += lbtime::predict(node, list_entries(engine));
            if let Some(before) = before {
                if (before.t_cpu - before.t_gpu).abs() > self.cfg.eps_switch_s {
                    let out = fine_grained_optimize(engine, model, node, &self.cfg);
                    rep.lb_time += out.lb_time;
                    rep.fgo_rounds = out.rounds;
                    if out.rounds > 0 {
                        // The model's predicted win can be spurious away
                        // from the uniform-gap boundary; roll the edits
                        // back if they don't realize.
                        let realized =
                            crate::exec::time_step(engine.tree(), engine.lists(), &flops, node)
                                .ok()
                                .map(|t| t.compute());
                        rep.lb_time += lbtime::predict(node, list_entries(engine));
                        if matches!(realized, Some(r) if r > before.compute()) {
                            engine.rebuild(pos, self.s);
                            engine.refresh_lists();
                            rep.lb_time += lbtime::rebuild(node, pos.len());
                            rep.rebuilt = true;
                        }
                    }
                }
            }
        }
        self.incr_best = None;
        self.incr_dir_up = None;
        self.incr_flipped = false;
        self.state = LbState::Observation;
    }

    fn observation_step<K: Kernel>(
        &mut self,
        engine: &mut FmmEngine<K>,
        model: &CostModel,
        node: &HeteroNode,
        compute: f64,
        rep: &mut LbReport,
    ) {
        let limit = self.best_compute * (1.0 + self.cfg.regression_frac);
        if compute <= limit {
            self.regress_count = 0;
            self.best_compute = self.best_compute.min(compute);
            return;
        }
        // Hysteresis: demand the regression persist before paying for a
        // repair — a single spiked measurement (OS jitter, transient load)
        // must not cost an Enforce_S pass.
        self.regress_count += 1;
        if self.regress_count < self.cfg.regression_hysteresis {
            return;
        }
        self.regress_count = 0;
        // Regression: first line of defense is Enforce_S.
        let nodes_before = engine.tree().visible_nodes().len();
        let outcome = engine.tree_mut().enforce_s();
        rep.lb_time += lbtime::enforce(node, nodes_before, outcome.collapses + outcome.pushdowns);
        rep.enforced = true;
        match self.strategy {
            Strategy::StaticS => unreachable!("StaticS freezes after Search"),
            Strategy::EnforceOnly => {
                self.reset_best_next = true;
            }
            Strategy::Full => {
                let counts = engine.refresh_lists();
                rep.lb_time += lbtime::predict(node, list_entries(engine));
                let mut pred = model.predict(&counts, node);
                if pred.compute() > limit && self.cfg.use_fgo {
                    let out = fine_grained_optimize(engine, model, node, &self.cfg);
                    rep.lb_time += out.lb_time;
                    rep.fgo_rounds = out.rounds;
                    pred = out.prediction;
                }
                if pred.compute() > limit {
                    // Local repair failed: re-run the global adjustment.
                    self.state = LbState::Incremental;
                    self.incr_best = None;
                    self.incr_dir_up = None;
                    self.incr_flipped = false;
                            }
            }
        }
    }
}

/// M2L + P2P interaction-list entries of the engine's current lists (the
/// size driver of a prediction pass).
fn list_entries<K: Kernel>(engine: &FmmEngine<K>) -> usize {
    engine.lists().num_m2l() + engine.lists().num_p2p_pairs()
}

/// Result of one [`fine_grained_optimize`] invocation.
#[derive(Clone, Copy, Debug)]
pub struct FgoOutcome {
    pub lb_time: f64,
    pub rounds: usize,
    /// Predicted times of the tree as left behind.
    pub prediction: Prediction,
}

/// Visible internal non-root nodes whose visible children are all leaves
/// ("twigs"), cheapest first — collapsing one of these trades its children's
/// M2L/L2L work for a bounded P2P increase, and is exactly invertible by
/// PushDown.
fn collapse_candidates(tree: &Octree, k: usize) -> Vec<NodeId> {
    let mut cand: Vec<NodeId> = tree
        .visible_nodes()
        .into_iter()
        .filter(|&id| {
            id != Octree::ROOT
                && !tree.node(id).is_leaf()
                && tree.node(id).count() > 0
                && tree.visible_children(id).all(|c| tree.node(c).is_leaf())
        })
        .collect();
    cand.sort_by_key(|&id| (tree.node(id).count(), id));
    cand.truncate(k);
    cand
}

/// Active leaves heavy enough to be worth splitting, heaviest first.
fn pushdown_candidates(tree: &Octree, k: usize) -> Vec<NodeId> {
    let mut cand: Vec<NodeId> = tree
        .active_leaves()
        .into_iter()
        .filter(|&id| tree.node(id).count() >= 8)
        .collect();
    cand.sort_by_key(|&id| (std::cmp::Reverse(tree.node(id).count()), id));
    cand.truncate(k);
    cand
}

/// The paper's **FineGrainedOptimize** (§VI.B): make batched local Collapse
/// (CPU too slow) or PushDown (GPU too slow) modifications, re-predicting
/// the step time after each batch via the cost model, and keep going while
/// the predicted compute time falls. The last (non-improving) batch is
/// reverted.
pub fn fine_grained_optimize<K: Kernel>(
    engine: &mut FmmEngine<K>,
    model: &CostModel,
    node: &HeteroNode,
    cfg: &LbConfig,
) -> FgoOutcome {
    let mut lb_time = 0.0;
    let mut counts = engine.refresh_lists();
    lb_time += lbtime::predict(node, list_entries(engine));
    let mut best = model.predict(&counts, node);
    let mut rounds = 0usize;

    while rounds < cfg.fgo_max_rounds {
        let tree = engine.tree();
        // P2P pairs only convert to M2L when *both* cells of a pair are
        // refined, so pushdown batches must be large enough to split
        // spatially neighbouring cells together (heaviest leaves cluster);
        // a batch of one almost never improves and would stall the loop.
        let batch_size =
            ((tree.active_leaves().len() as f64 * cfg.fgo_batch_frac).ceil() as usize).max(8);
        let collapsing = best.cpu_dominant();
        let batch = if collapsing {
            collapse_candidates(tree, batch_size)
        } else {
            pushdown_candidates(tree, batch_size)
        };
        if batch.is_empty() {
            break;
        }
        let applied = apply_batch(engine.tree_mut(), &batch, collapsing);
        if applied.is_empty() {
            break;
        }
        lb_time += lbtime::modify(node, applied.len());
        counts = engine.refresh_lists();
        lb_time += lbtime::predict(node, list_entries(engine));
        let pred = model.predict(&counts, node);
        rounds += 1;
        if pred.compute() < best.compute() {
            best = pred;
        } else {
            // Revert the non-improving batch and stop.
            apply_batch(engine.tree_mut(), &applied, !collapsing);
            lb_time += lbtime::modify(node, applied.len());
            engine.refresh_lists();
            lb_time += lbtime::predict(node, list_entries(engine));
            break;
        }
    }
    FgoOutcome { lb_time, rounds, prediction: best }
}

/// Apply Collapse (`collapsing`) or PushDown to every node in `batch`;
/// returns the ids where the operation actually applied.
fn apply_batch(tree: &mut Octree, batch: &[NodeId], collapsing: bool) -> Vec<NodeId> {
    batch
        .iter()
        .copied()
        .filter(|&id| if collapsing { tree.collapse(id) } else { tree.push_down(id) })
        .collect()
}

/// Sweep S on a geometric grid and return the value minimizing the virtual
/// compute time — how the paper picks S for CPU-only runs ("the S that
/// minimized the time for this single core case") and how every strategy's
/// initial S is validated in the benches.
pub fn search_best_s_cpu_only<K: Kernel>(
    engine: &mut FmmEngine<K>,
    node: &HeteroNode,
    pos: &[geom::Vec3],
    cfg: &LbConfig,
) -> (usize, f64) {
    let flops = engine.kernel.op_flops(engine.expansion_ops());
    let mut best = (cfg.s_min, f64::INFINITY);
    let mut s = cfg.s_min;
    while s <= cfg.s_max {
        engine.rebuild(pos, s);
        engine.refresh_lists();
        // With zero online GPUs the near field folds into the CPU DAG, so
        // this timing never takes a fallible GPU path.
        let t = crate::exec::time_step(engine.tree(), engine.lists(), &flops, node)
            .expect("CPU-side timing cannot fail")
            .compute();
        if t < best.1 {
            best = (s, t);
        }
        s = ((s as f64 * 1.6).ceil() as usize).max(s + 1);
    }
    engine.rebuild(pos, best.0);
    engine.refresh_lists();
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::FmmParams;
    use crate::exec::time_step;
    use fmm_math::{GravityKernel, Kernel};
    use nbody::plummer;

    struct Harness {
        engine: FmmEngine<GravityKernel>,
        model: CostModel,
        node: HeteroNode,
        pos: Vec<geom::Vec3>,
    }

    impl Harness {
        fn new(n: usize, node: HeteroNode, s0: usize) -> Self {
            let b = plummer(n, 1.0, 1.0, 401);
            let engine =
                FmmEngine::new(GravityKernel::default(), FmmParams::default(), &b.pos, s0);
            Harness { engine, model: CostModel::new(), node, pos: b.pos }
        }

        /// One timing-only step: refresh, time, observe. Returns (cpu, gpu).
        fn measure(&mut self) -> (f64, f64) {
            let counts = self.engine.refresh_lists();
            let flops = self.engine.kernel.op_flops(self.engine.expansion_ops());
            let t = time_step(self.engine.tree(), self.engine.lists(), &flops, &self.node)
                .unwrap();
            self.model.observe(&counts, &t, &flops, &self.node);
            (t.t_cpu, t.t_gpu)
        }
    }

    fn cfg_for_tests() -> LbConfig {
        // The scaled-down workloads run in milliseconds, so scale the
        // paper's 0.15 s switching threshold accordingly.
        LbConfig { eps_switch_s: 2e-3, ..Default::default() }
    }

    #[test]
    fn search_converges_to_crossover() {
        let mut h = Harness::new(6000, HeteroNode::system_a(10, 2), 64);
        let mut lb = LoadBalancer::new(Strategy::Full, cfg_for_tests());
        h.engine.rebuild(&h.pos.clone(), lb.s());
        let mut steps = 0;
        while lb.state() == LbState::Search && steps < 25 {
            let (tc, tg) = h.measure();
            let pos = h.pos.clone();
            lb.post_step(&mut h.engine, &h.model, &h.node, &pos, tc, tg);
            steps += 1;
        }
        assert!(steps < 25, "binary search did not converge");
        assert_ne!(lb.state(), LbState::Search);
        // At the S the search settled on, CPU and GPU times are of the same
        // order (within the bracket resolution).
        let (tc, tg) = h.measure();
        let ratio = tc.max(tg) / tc.min(tg).max(1e-12);
        assert!(ratio < 4.0, "crossover imbalance ratio {ratio} (tc={tc}, tg={tg})");
    }

    #[test]
    fn search_typically_short_like_paper() {
        // Paper: "this state typically persists for fewer than 15 time
        // steps".
        let mut h = Harness::new(4000, HeteroNode::system_a(10, 1), 64);
        let mut lb = LoadBalancer::new(Strategy::Full, cfg_for_tests());
        h.engine.rebuild(&h.pos.clone(), lb.s());
        let mut steps = 0;
        while lb.state() == LbState::Search {
            let (tc, tg) = h.measure();
            let pos = h.pos.clone();
            lb.post_step(&mut h.engine, &h.model, &h.node, &pos, tc, tg);
            steps += 1;
            assert!(steps <= 15, "search ran {steps} steps");
        }
    }

    #[test]
    fn static_strategy_freezes_after_search() {
        let mut h = Harness::new(2000, HeteroNode::system_a(4, 1), 64);
        let mut lb = LoadBalancer::new(Strategy::StaticS, cfg_for_tests());
        for _ in 0..30 {
            let (tc, tg) = h.measure();
            let pos = h.pos.clone();
            lb.post_step(&mut h.engine, &h.model, &h.node, &pos, tc, tg);
            if lb.state() == LbState::Frozen {
                break;
            }
        }
        assert_eq!(lb.state(), LbState::Frozen);
        // Frozen: no further tree modifications whatever the times.
        let nodes = h.engine.tree().num_nodes();
        let pos = h.pos.clone();
        let rep = lb.post_step(&mut h.engine, &h.model, &h.node, &pos, 100.0, 1.0);
        assert_eq!(rep.lb_time, 0.0);
        assert!(!rep.rebuilt && !rep.enforced);
        assert_eq!(h.engine.tree().num_nodes(), nodes);
    }

    #[test]
    fn cpu_only_node_skips_search() {
        let mut h = Harness::new(1000, HeteroNode::serial(), 64);
        let mut lb = LoadBalancer::new(Strategy::Full, cfg_for_tests());
        let (tc, tg) = h.measure();
        let pos = h.pos.clone();
        lb.post_step(&mut h.engine, &h.model, &h.node, &pos, tc, tg);
        assert_ne!(lb.state(), LbState::Search);
    }

    #[test]
    fn fgo_never_worsens_predicted_compute() {
        let mut h = Harness::new(6000, HeteroNode::system_a(10, 2), 64);
        // Deliberately imbalanced tree: far too coarse (GPU overloaded).
        h.engine.rebuild(&h.pos.clone(), 1024);
        h.measure();
        let counts = h.engine.refresh_lists();
        let before = h.model.predict(&counts, &h.node);
        let out = fine_grained_optimize(&mut h.engine, &h.model, &h.node, &cfg_for_tests());
        assert!(
            out.prediction.compute() <= before.compute() * (1.0 + 1e-9),
            "FGO worsened prediction: {} -> {}",
            before.compute(),
            out.prediction.compute()
        );
        assert!(out.lb_time > 0.0);
    }

    #[test]
    fn fgo_bridges_gpu_overload_with_pushdowns() {
        // Needs enough bodies that splitting a batch of neighbouring heavy
        // leaves converts P2P pairs into M2L (both sides of a pair must
        // refine); below ~15k bodies the batches cannot bite.
        let mut h = Harness::new(20000, HeteroNode::system_a(10, 2), 64);
        h.engine.rebuild(&h.pos.clone(), 1024);
        h.measure();
        let counts = h.engine.refresh_lists();
        let before = h.model.predict(&counts, &h.node);
        assert!(!before.cpu_dominant(), "setup should be GPU-bound");
        let out = fine_grained_optimize(&mut h.engine, &h.model, &h.node, &cfg_for_tests());
        assert!(out.rounds > 0, "expected at least one pushdown batch");
        assert!(out.prediction.t_gpu < before.t_gpu, "pushdowns must shed GPU work");
        h.engine.tree().check_invariants().unwrap();
    }

    #[test]
    fn fgo_bridges_cpu_overload_with_collapses() {
        let mut h = Harness::new(6000, HeteroNode::system_a(4, 4), 64);
        h.engine.rebuild(&h.pos.clone(), 12);
        h.measure();
        let counts = h.engine.refresh_lists();
        let before = h.model.predict(&counts, &h.node);
        assert!(before.cpu_dominant(), "setup should be CPU-bound");
        let out = fine_grained_optimize(&mut h.engine, &h.model, &h.node, &cfg_for_tests());
        assert!(out.rounds > 0, "expected at least one collapse batch");
        assert!(out.prediction.t_cpu < before.t_cpu, "collapses must shed CPU work");
        h.engine.tree().check_invariants().unwrap();
    }

    #[test]
    fn enforce_only_resets_best_after_enforce() {
        let mut h = Harness::new(2000, HeteroNode::system_a(4, 1), 64);
        let mut lb = LoadBalancer::new(Strategy::EnforceOnly, cfg_for_tests());
        // Drive through search.
        for _ in 0..25 {
            let (tc, tg) = h.measure();
            let pos = h.pos.clone();
            lb.post_step(&mut h.engine, &h.model, &h.node, &pos, tc, tg);
            if lb.state() == LbState::Observation {
                break;
            }
        }
        assert_eq!(lb.state(), LbState::Observation);
        let best = lb.best_compute();
        // Report a big regression: must enforce and arm the best reset.
        let pos = h.pos.clone();
        let rep = lb.post_step(&mut h.engine, &h.model, &h.node, &pos, best * 3.0, 0.0);
        assert!(rep.enforced);
        // Next step's compute becomes the new best, even though it is worse
        // than the old best.
        let new_compute = best * 1.5;
        lb.post_step(&mut h.engine, &h.model, &h.node, &pos, new_compute, 0.0);
        assert_eq!(lb.best_compute(), new_compute);
    }

    #[test]
    fn observation_is_quiet_within_tolerance() {
        let mut h = Harness::new(2000, HeteroNode::system_a(4, 1), 64);
        let mut lb = LoadBalancer::new(Strategy::Full, cfg_for_tests());
        for _ in 0..30 {
            let (tc, tg) = h.measure();
            let pos = h.pos.clone();
            lb.post_step(&mut h.engine, &h.model, &h.node, &pos, tc, tg);
            if lb.state() == LbState::Observation {
                break;
            }
        }
        assert_eq!(lb.state(), LbState::Observation);
        let best = lb.best_compute();
        let pos = h.pos.clone();
        let rep = lb.post_step(&mut h.engine, &h.model, &h.node, &pos, best * 1.02, 0.0);
        assert_eq!(rep.lb_time, 0.0, "within 5%: no action");
        assert!(!rep.enforced && !rep.rebuilt);
    }

    #[test]
    fn device_dropout_enters_recovery_then_settles() {
        let mut h = Harness::new(4000, HeteroNode::system_a(10, 2), 64);
        let mut lb = LoadBalancer::new(Strategy::Full, cfg_for_tests());
        h.engine.rebuild(&h.pos.clone(), lb.s());
        for _ in 0..40 {
            let (tc, tg) = h.measure();
            let pos = h.pos.clone();
            lb.post_step(&mut h.engine, &h.model, &h.node, &pos, tc, tg);
            if lb.state() == LbState::Observation {
                break;
            }
        }
        assert_eq!(lb.state(), LbState::Observation);
        // GPU 1 drops out.
        h.node
            .gpus
            .as_mut()
            .unwrap()
            .apply_event(&gpu_sim::FaultEvent::GpuDropout { device: 1 })
            .unwrap();
        let (tc, tg) = h.measure();
        let pos = h.pos.clone();
        lb.post_step(&mut h.engine, &h.model, &h.node, &pos, tc, tg);
        assert_eq!(lb.state(), LbState::Recovery, "dropout must trigger recovery");
        // The warm bisection plus the bidirectional Incremental walk must
        // terminate back in Observation.
        for _ in 0..60 {
            let (tc, tg) = h.measure();
            let pos = h.pos.clone();
            lb.post_step(&mut h.engine, &h.model, &h.node, &pos, tc, tg);
            if lb.state() == LbState::Observation {
                break;
            }
        }
        assert_eq!(lb.state(), LbState::Observation);
    }

    #[test]
    fn all_devices_lost_falls_back_to_cpu_only_plan() {
        let mut h = Harness::new(2000, HeteroNode::system_a(4, 1), 64);
        let mut lb = LoadBalancer::new(Strategy::Full, cfg_for_tests());
        h.engine.rebuild(&h.pos.clone(), lb.s());
        for _ in 0..40 {
            let (tc, tg) = h.measure();
            let pos = h.pos.clone();
            lb.post_step(&mut h.engine, &h.model, &h.node, &pos, tc, tg);
            if lb.state() == LbState::Observation {
                break;
            }
        }
        h.node
            .gpus
            .as_mut()
            .unwrap()
            .apply_event(&gpu_sim::FaultEvent::GpuDropout { device: 0 })
            .unwrap();
        let (tc, tg) = h.measure();
        assert_eq!(tg, 0.0, "no online devices: all work on the CPU");
        let pos = h.pos.clone();
        let rep = lb.post_step(&mut h.engine, &h.model, &h.node, &pos, tc, tg);
        assert!(rep.rebuilt, "CPU fallback re-plans the tree");
        assert!(rep.lb_time > 0.0, "the fallback sweep is not free");
        assert_eq!(lb.state(), LbState::Observation);
        // Further CPU-only steps run quietly.
        let (tc, tg) = h.measure();
        lb.post_step(&mut h.engine, &h.model, &h.node, &pos, tc, tg);
        assert_eq!(lb.state(), LbState::Observation);
    }

    #[test]
    fn hysteresis_ignores_a_single_spike() {
        let mut h = Harness::new(2000, HeteroNode::system_a(4, 1), 64);
        let cfg = LbConfig { regression_hysteresis: 2, ..cfg_for_tests() };
        let mut lb = LoadBalancer::new(Strategy::Full, cfg);
        for _ in 0..40 {
            let (tc, tg) = h.measure();
            let pos = h.pos.clone();
            lb.post_step(&mut h.engine, &h.model, &h.node, &pos, tc, tg);
            if lb.state() == LbState::Observation {
                break;
            }
        }
        assert_eq!(lb.state(), LbState::Observation);
        let best = lb.best_compute();
        let pos = h.pos.clone();
        // One spiked step: tolerated.
        let rep = lb.post_step(&mut h.engine, &h.model, &h.node, &pos, best * 3.0, 0.0);
        assert!(!rep.enforced && rep.lb_time == 0.0, "first spike must be ignored");
        // A second consecutive regression acts.
        let rep = lb.post_step(&mut h.engine, &h.model, &h.node, &pos, best * 3.0, 0.0);
        assert!(rep.enforced, "persistent regression must repair");
    }

    #[test]
    fn cpu_only_s_sweep_finds_interior_optimum() {
        let mut h = Harness::new(3000, HeteroNode::serial(), 32);
        let cfg = LbConfig::default();
        let pos = h.pos.clone();
        let (s, t) = search_best_s_cpu_only(&mut h.engine, &h.node, &pos, &cfg);
        assert!(t > 0.0);
        assert!(
            s > cfg.s_min && s < cfg.s_max,
            "serial-optimal S should be interior, got {s}"
        );
        // Endpoint trees must be slower.
        let flops = h.engine.kernel.op_flops(h.engine.expansion_ops());
        for probe in [cfg.s_min, cfg.s_max] {
            h.engine.rebuild(&pos, probe);
            h.engine.refresh_lists();
            let tp = time_step(h.engine.tree(), h.engine.lists(), &flops, &h.node)
                .unwrap()
                .compute();
            assert!(tp >= t, "S={probe} beat the sweep optimum");
        }
    }
}
