//! Checkpoint/restore: a versioned, checksummed snapshot format for the
//! whole simulation state.
//!
//! The format is JSON — self-describing and diffable like the telemetry
//! traces — wrapped in an envelope:
//!
//! ```json
//! {"schema_version":1,"kind":"tracker","checksum":"<fnv1a64 hex>","payload":{...}}
//! ```
//!
//! The checksum is FNV-1a-64 over the exact payload bytes, so any bit flip
//! in transit is caught before a corrupted state is trusted. Every `f64` is
//! serialized as the decimal value of its IEEE-754 bit pattern (`to_bits`):
//! exact round-trips with no decimal-formatting ambiguity, NaN/inf-safe,
//! and a restored run therefore continues **bit-identically** — interaction
//! lists are captured verbatim because their iteration order drives the
//! float-summation order of every downstream reduction.
//!
//! Like the `telemetry` crate, this module is dependency-free: it carries
//! its own writer and a minimal recursive-descent JSON parser.

use crate::balance::{BalancerSnapshot, LbConfig, LbState, Strategy};
use crate::config::FmmParams;
use crate::cost::CostModel;
use crate::error::Error;
use crate::filter::FilterSnapshot;
use crate::simulate::StepRecord;
use geom::Vec3;
use gpu_sim::{DeviceStatus, FaultEvent, FaultSchedule, TimedFault};
use octree::{ListsSnapshot, Mac, Node, OpCounts, TreeSnapshot, NONE};
use std::fmt::Write as _;

/// Version of the on-disk schema. Bump on any incompatible layout change;
/// restore refuses snapshots from a different version.
pub const SCHEMA_VERSION: u32 = 1;

/// Plain-data image of an [`FmmEngine`](crate::FmmEngine): numerical
/// parameters, the octree, and the live execution plan (verbatim lists).
/// Scratch buffers are excluded — every solve overwrites them in full.
#[derive(Clone, Debug)]
pub struct EngineSnapshot {
    pub params: FmmParams,
    pub domain: Option<(Vec3, f64)>,
    pub tree: TreeSnapshot,
    pub plan: Option<ListsSnapshot>,
    pub plan_stale: bool,
}

/// Plain-data image of a [`StrategyTracker`](crate::StrategyTracker): the
/// engine, the trained cost model, the balancer state machine, the timing
/// filters, the fault script with the device status it has produced so far,
/// the measurement-noise RNG state, the step history — and the body
/// positions, so a restore can proceed even when the live position buffer
/// was the thing that got corrupted.
#[derive(Clone, Debug)]
pub struct TrackerSnapshot {
    pub engine: EngineSnapshot,
    pub model: CostModel,
    pub balancer: BalancerSnapshot,
    pub records: Vec<StepRecord>,
    pub first: bool,
    pub faults: FaultSchedule,
    /// Per-device status at checkpoint time (`None` on CPU-only nodes).
    pub gpu_status: Option<Vec<DeviceStatus>>,
    pub cpu_load: f64,
    pub noise_sigma: f64,
    pub noise_state: u64,
    pub filter_cpu: FilterSnapshot,
    pub filter_gpu: FilterSnapshot,
    pub pos: Vec<Vec3>,
}

// ---- checksum ----

/// FNV-1a 64-bit over the payload bytes.
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

// ---- writer ----

fn w_f64(out: &mut String, v: f64) {
    let _ = write!(out, "{}", v.to_bits());
}

fn w_vec3(out: &mut String, v: Vec3) {
    out.push('[');
    w_f64(out, v.x);
    out.push(',');
    w_f64(out, v.y);
    out.push(',');
    w_f64(out, v.z);
    out.push(']');
}

fn w_u64_slice<T: Copy + Into<u64>>(out: &mut String, xs: &[T]) {
    out.push('[');
    for (i, &x) in xs.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{}", x.into());
    }
    out.push(']');
}

fn w_lists(out: &mut String, lists: &[Vec<u32>]) {
    out.push('[');
    for (i, l) in lists.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        w_u64_slice(out, l);
    }
    out.push(']');
}

fn w_counts(out: &mut String, c: &OpCounts) {
    let _ = write!(
        out,
        "[{},{},{},{},{},{},{}]",
        c.p2m_bodies,
        c.m2m_ops,
        c.m2l_ops,
        c.l2l_ops,
        c.l2p_bodies,
        c.p2p_interactions,
        c.active_nodes
    );
}

fn w_tree(out: &mut String, t: &TreeSnapshot) {
    out.push_str("{\"nodes\":[");
    for (i, n) in t.nodes.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('[');
        w_f64(out, n.center.x);
        out.push(',');
        w_f64(out, n.center.y);
        out.push(',');
        w_f64(out, n.center.z);
        out.push(',');
        w_f64(out, n.half_width);
        let _ = write!(
            out,
            ",{},{},{},{},{},{}]",
            n.level, n.parent, n.first_child, n.begin, n.end, n.collapsed as u8
        );
    }
    out.push_str("],\"order\":");
    w_u64_slice(out, &t.order);
    out.push_str(",\"codes\":");
    w_u64_slice(out, &t.codes);
    let _ = write!(out, ",\"s_value\":{},\"root_center\":", t.s_value);
    w_vec3(out, t.root_center);
    out.push_str(",\"root_half_width\":");
    w_f64(out, t.root_half_width);
    let _ = write!(out, ",\"max_level\":{}}}", t.max_level);
}

fn w_plan(out: &mut String, p: &ListsSnapshot) {
    out.push_str("{\"theta\":");
    w_f64(out, p.theta);
    out.push_str(",\"m2l\":");
    w_lists(out, &p.m2l);
    out.push_str(",\"p2p\":");
    w_lists(out, &p.p2p);
    out.push_str(",\"rev_m2l\":");
    w_lists(out, &p.rev_m2l);
    out.push_str(",\"rev_p2p\":");
    w_lists(out, &p.rev_p2p);
    out.push_str(",\"node_counts\":[");
    for (i, c) in p.node_counts.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        w_counts(out, c);
    }
    out.push_str("],\"totals\":");
    w_counts(out, &p.totals);
    out.push_str(",\"body_count\":");
    w_u64_slice(out, &p.body_count);
    out.push_str(",\"stamp\":");
    w_u64_slice(out, &p.stamp);
    let _ = write!(out, ",\"epoch\":{}}}", p.epoch);
}

fn w_engine(out: &mut String, e: &EngineSnapshot) {
    let _ = write!(out, "{{\"order\":{},\"theta\":", e.params.order);
    w_f64(out, e.params.mac.theta);
    let _ = write!(out, ",\"max_level\":{},\"domain\":", e.params.max_level);
    match e.domain {
        Some((c, hw)) => {
            out.push('[');
            w_f64(out, c.x);
            out.push(',');
            w_f64(out, c.y);
            out.push(',');
            w_f64(out, c.z);
            out.push(',');
            w_f64(out, hw);
            out.push(']');
        }
        None => out.push_str("null"),
    }
    out.push_str(",\"tree\":");
    w_tree(out, &e.tree);
    out.push_str(",\"plan\":");
    match &e.plan {
        Some(p) => w_plan(out, p),
        None => out.push_str("null"),
    }
    let _ = write!(out, ",\"plan_stale\":{}}}", e.plan_stale);
}

fn w_filter(out: &mut String, f: &FilterSnapshot) {
    out.push_str("{\"window\":[");
    for (i, &v) in f.window.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        w_f64(out, v);
    }
    let _ = write!(out, "],\"k\":{},\"alpha\":", f.k);
    w_f64(out, f.alpha);
    out.push_str(",\"ewma\":");
    match f.ewma {
        Some(v) => w_f64(out, v),
        None => out.push_str("null"),
    }
    let _ = write!(out, ",\"rejected\":{}}}", f.rejected);
}

fn w_fault_event(out: &mut String, ev: &FaultEvent) {
    match *ev {
        FaultEvent::GpuSlowdown { device, factor } => {
            let _ = write!(out, "[\"gpu_slowdown\",{device},");
            w_f64(out, factor);
            out.push(']');
        }
        FaultEvent::GpuDropout { device } => {
            let _ = write!(out, "[\"gpu_dropout\",{device}]");
        }
        FaultEvent::GpuRecover { device } => {
            let _ = write!(out, "[\"gpu_recover\",{device}]");
        }
        FaultEvent::ExternalCpuLoad { factor } => {
            out.push_str("[\"cpu_load\",");
            w_f64(out, factor);
            out.push(']');
        }
        FaultEvent::TimingNoise { sigma } => {
            out.push_str("[\"noise\",");
            w_f64(out, sigma);
            out.push(']');
        }
    }
}

fn w_balancer(out: &mut String, b: &BalancerSnapshot) {
    let c = &b.cfg;
    let _ = write!(
        out,
        "{{\"s_min\":{},\"s_max\":{},\"eps\":",
        c.s_min, c.s_max
    );
    w_f64(out, c.eps_switch_s);
    out.push_str(",\"reg_frac\":");
    w_f64(out, c.regression_frac);
    let _ = write!(out, ",\"use_fgo\":{},\"fgo_batch\":", c.use_fgo);
    w_f64(out, c.fgo_batch_frac);
    let _ = write!(out, ",\"fgo_rounds\":{},\"incr_factor\":", c.fgo_max_rounds);
    w_f64(out, c.incr_factor);
    out.push_str(",\"incr_tol\":");
    w_f64(out, c.incr_tol);
    let _ = write!(
        out,
        ",\"hysteresis\":{},\"strategy\":\"{}\",\"state\":\"{}\",\"s\":{},\"lo\":{},\"hi\":{},\"best\":",
        c.regression_hysteresis,
        b.strategy.name(),
        b.state.name(),
        b.s,
        b.lo,
        b.hi
    );
    w_f64(out, b.best_compute);
    out.push_str(",\"incr_best\":");
    match b.incr_best {
        Some((s, t)) => {
            let _ = write!(out, "[{s},");
            w_f64(out, t);
            out.push(']');
        }
        None => out.push_str("null"),
    }
    out.push_str(",\"incr_dir_up\":");
    match b.incr_dir_up {
        Some(up) => {
            let _ = write!(out, "{up}");
        }
        None => out.push_str("null"),
    }
    let _ = write!(
        out,
        ",\"incr_flipped\":{},\"regress_count\":{},\"last_online\":",
        b.incr_flipped, b.regress_count
    );
    match b.last_online {
        Some(n) => {
            let _ = write!(out, "{n}");
        }
        None => out.push_str("null"),
    }
    let _ = write!(out, ",\"reset_best_next\":{}}}", b.reset_best_next);
}

fn w_record(out: &mut String, r: &StepRecord) {
    let _ = write!(out, "[{},{},\"{}\",", r.step, r.s, r.state.name());
    w_f64(out, r.t_cpu);
    out.push(',');
    w_f64(out, r.t_gpu);
    out.push(',');
    w_f64(out, r.t_lb);
    out.push(',');
    w_f64(out, r.gpu_efficiency);
    let _ = write!(out, ",{},{}]", r.p2p_interactions, r.m2l_ops);
}

fn w_tracker(out: &mut String, t: &TrackerSnapshot) {
    out.push_str("{\"engine\":");
    w_engine(out, &t.engine);
    out.push_str(",\"model\":[");
    let m = &t.model;
    for (i, v) in [
        m.c_p2m,
        m.c_m2m,
        m.c_m2l,
        m.c_l2l,
        m.c_l2p,
        m.c_cpu_pair,
        m.c_node,
        m.parallel_rate,
        m.c_gpu_pair,
    ]
    .into_iter()
    .enumerate()
    {
        if i > 0 {
            out.push(',');
        }
        w_f64(out, v);
    }
    let _ = write!(
        out,
        "],\"model_observed\":{},\"balancer\":",
        m.is_observed()
    );
    w_balancer(out, &t.balancer);
    out.push_str(",\"records\":[");
    for (i, r) in t.records.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        w_record(out, r);
    }
    let _ = write!(out, "],\"first\":{},\"faults\":[", t.first);
    for (i, tf) in t.faults.events().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "[{},", tf.step);
        w_fault_event(out, &tf.event);
        out.push(']');
    }
    out.push_str("],\"gpu_status\":");
    match &t.gpu_status {
        Some(st) => {
            out.push('[');
            for (i, d) in st.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                let _ = write!(out, "[{},", d.online as u8);
                w_f64(out, d.slowdown);
                out.push(']');
            }
            out.push(']');
        }
        None => out.push_str("null"),
    }
    out.push_str(",\"cpu_load\":");
    w_f64(out, t.cpu_load);
    out.push_str(",\"noise_sigma\":");
    w_f64(out, t.noise_sigma);
    let _ = write!(out, ",\"noise_state\":{},\"filter_cpu\":", t.noise_state);
    w_filter(out, &t.filter_cpu);
    out.push_str(",\"filter_gpu\":");
    w_filter(out, &t.filter_gpu);
    out.push_str(",\"pos\":[");
    for (i, p) in t.pos.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        w_f64(out, p.x);
        out.push(',');
        w_f64(out, p.y);
        out.push(',');
        w_f64(out, p.z);
    }
    out.push_str("]}");
}

/// Wrap a payload in the versioned, checksummed envelope.
fn seal(kind: &str, payload: String) -> String {
    let checksum = fnv1a64(payload.as_bytes());
    format!(
        "{{\"schema_version\":{SCHEMA_VERSION},\"kind\":\"{kind}\",\"checksum\":\"{checksum:016x}\",\"payload\":{payload}}}"
    )
}

/// Serialize an engine snapshot to checkpoint text.
pub fn engine_to_json(snap: &EngineSnapshot) -> String {
    let mut payload = String::with_capacity(1 << 16);
    w_engine(&mut payload, snap);
    seal("engine", payload)
}

/// Serialize a tracker snapshot to checkpoint text.
pub fn tracker_to_json(snap: &TrackerSnapshot) -> String {
    let mut payload = String::with_capacity(1 << 18);
    w_tracker(&mut payload, snap);
    seal("tracker", payload)
}

// ---- minimal JSON parser ----

/// Parsed JSON value. Numbers keep their raw text: the format writes every
/// number as a decimal `u64` (floats as bit patterns), so interpretation is
/// the reader's job and no precision is lost in a double round-trip.
#[derive(Clone, Debug)]
enum JVal {
    Null,
    Bool(bool),
    Num(String),
    Str(String),
    Arr(Vec<JVal>),
    Obj(Vec<(String, JVal)>),
}

struct Parser<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Self {
        Parser {
            bytes: text.as_bytes(),
            at: 0,
        }
    }

    fn err(&self, what: &str) -> String {
        format!("{what} at byte {}", self.at)
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.at) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.at += 1;
            } else {
                break;
            }
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        self.skip_ws();
        if self.bytes.get(self.at) == Some(&b) {
            self.at += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn value(&mut self) -> Result<JVal, String> {
        self.skip_ws();
        match self.bytes.get(self.at) {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(JVal::Str(self.string()?)),
            Some(b't') => self.literal("true", JVal::Bool(true)),
            Some(b'f') => self.literal("false", JVal::Bool(false)),
            Some(b'n') => self.literal("null", JVal::Null),
            Some(c) if c.is_ascii_digit() || *c == b'-' => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn literal(&mut self, lit: &str, v: JVal) -> Result<JVal, String> {
        if self.bytes[self.at..].starts_with(lit.as_bytes()) {
            self.at += lit.len();
            Ok(v)
        } else {
            Err(self.err("bad literal"))
        }
    }

    fn number(&mut self) -> Result<JVal, String> {
        let start = self.at;
        if self.bytes.get(self.at) == Some(&b'-') {
            self.at += 1;
        }
        while matches!(self.bytes.get(self.at), Some(b) if b.is_ascii_digit()) {
            self.at += 1;
        }
        if self.at == start {
            return Err(self.err("empty number"));
        }
        let raw = std::str::from_utf8(&self.bytes[start..self.at]).map_err(|_| "utf8")?;
        Ok(JVal::Num(raw.to_string()))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            match self.bytes.get(self.at) {
                Some(b'"') => {
                    self.at += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.at += 1;
                    match self.bytes.get(self.at) {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'n') => s.push('\n'),
                        Some(b't') => s.push('\t'),
                        Some(b'r') => s.push('\r'),
                        _ => return Err(self.err("unsupported escape")),
                    }
                    self.at += 1;
                }
                Some(&b) if b < 0x80 => {
                    s.push(b as char);
                    self.at += 1;
                }
                Some(_) => {
                    // Multi-byte UTF-8: copy the whole code point.
                    let rest = std::str::from_utf8(&self.bytes[self.at..]).map_err(|_| "utf8")?;
                    let ch = rest.chars().next().ok_or("eof in string")?;
                    s.push(ch);
                    self.at += ch.len_utf8();
                }
                None => return Err(self.err("unterminated string")),
            }
        }
    }

    fn array(&mut self) -> Result<JVal, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.bytes.get(self.at) == Some(&b']') {
            self.at += 1;
            return Ok(JVal::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.bytes.get(self.at) {
                Some(b',') => self.at += 1,
                Some(b']') => {
                    self.at += 1;
                    return Ok(JVal::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<JVal, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.bytes.get(self.at) == Some(&b'}') {
            self.at += 1;
            return Ok(JVal::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.expect(b':')?;
            let val = self.value()?;
            fields.push((key, val));
            self.skip_ws();
            match self.bytes.get(self.at) {
                Some(b',') => self.at += 1,
                Some(b'}') => {
                    self.at += 1;
                    return Ok(JVal::Obj(fields));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }
}

// ---- typed readers over JVal ----

impl JVal {
    fn get<'a>(&'a self, key: &str) -> Result<&'a JVal, String> {
        match self {
            JVal::Obj(fields) => fields
                .iter()
                .find(|(k, _)| k == key)
                .map(|(_, v)| v)
                .ok_or_else(|| format!("missing field '{key}'")),
            _ => Err(format!("'{key}' looked up on a non-object")),
        }
    }

    fn arr(&self) -> Result<&[JVal], String> {
        match self {
            JVal::Arr(items) => Ok(items),
            _ => Err("expected an array".into()),
        }
    }

    fn str(&self) -> Result<&str, String> {
        match self {
            JVal::Str(s) => Ok(s),
            _ => Err("expected a string".into()),
        }
    }

    fn boolean(&self) -> Result<bool, String> {
        match self {
            JVal::Bool(b) => Ok(*b),
            _ => Err("expected a bool".into()),
        }
    }

    fn u64(&self) -> Result<u64, String> {
        match self {
            JVal::Num(raw) => raw.parse::<u64>().map_err(|e| format!("bad u64: {e}")),
            _ => Err("expected a number".into()),
        }
    }

    fn usize(&self) -> Result<usize, String> {
        Ok(self.u64()? as usize)
    }

    fn u32(&self) -> Result<u32, String> {
        let v = self.u64()?;
        u32::try_from(v).map_err(|_| format!("{v} overflows u32"))
    }

    /// An `f64` stored as its bit pattern.
    fn f64bits(&self) -> Result<f64, String> {
        Ok(f64::from_bits(self.u64()?))
    }

    fn opt<T>(&self, read: impl FnOnce(&JVal) -> Result<T, String>) -> Result<Option<T>, String> {
        match self {
            JVal::Null => Ok(None),
            v => read(v).map(Some),
        }
    }
}

fn r_vec3(v: &JVal) -> Result<Vec3, String> {
    let a = v.arr()?;
    if a.len() != 3 {
        return Err("Vec3 needs 3 components".into());
    }
    Ok(Vec3::new(a[0].f64bits()?, a[1].f64bits()?, a[2].f64bits()?))
}

fn r_u32_vec(v: &JVal) -> Result<Vec<u32>, String> {
    v.arr()?.iter().map(JVal::u32).collect()
}

fn r_lists(v: &JVal) -> Result<Vec<Vec<u32>>, String> {
    v.arr()?.iter().map(r_u32_vec).collect()
}

fn r_counts(v: &JVal) -> Result<OpCounts, String> {
    let a = v.arr()?;
    if a.len() != 7 {
        return Err("OpCounts needs 7 fields".into());
    }
    Ok(OpCounts {
        p2m_bodies: a[0].u64()?,
        m2m_ops: a[1].u64()?,
        m2l_ops: a[2].u64()?,
        l2l_ops: a[3].u64()?,
        l2p_bodies: a[4].u64()?,
        p2p_interactions: a[5].u64()?,
        active_nodes: a[6].u64()?,
    })
}

fn r_tree(v: &JVal) -> Result<TreeSnapshot, String> {
    let mut nodes = Vec::new();
    for n in v.get("nodes")?.arr()? {
        let a = n.arr()?;
        if a.len() != 10 {
            return Err("node needs 10 fields".into());
        }
        let level = a[4].u64()?;
        nodes.push(Node {
            center: Vec3::new(a[0].f64bits()?, a[1].f64bits()?, a[2].f64bits()?),
            half_width: a[3].f64bits()?,
            level: u16::try_from(level).map_err(|_| format!("level {level} overflows u16"))?,
            parent: a[5].u32()?,
            first_child: a[6].u32()?,
            begin: a[7].u32()?,
            end: a[8].u32()?,
            collapsed: a[9].u64()? != 0,
        });
        let (p, fc) = (
            nodes.last().unwrap().parent,
            nodes.last().unwrap().first_child,
        );
        let _ = (p == NONE, fc == NONE); // NONE round-trips as a plain u32
    }
    let codes = v
        .get("codes")?
        .arr()?
        .iter()
        .map(JVal::u64)
        .collect::<Result<Vec<u64>, _>>()?;
    let max_level = v.get("max_level")?.u64()?;
    Ok(TreeSnapshot {
        nodes,
        order: r_u32_vec(v.get("order")?)?,
        codes,
        s_value: v.get("s_value")?.usize()?,
        root_center: r_vec3(v.get("root_center")?)?,
        root_half_width: v.get("root_half_width")?.f64bits()?,
        max_level: u16::try_from(max_level).map_err(|_| "max_level overflows u16".to_string())?,
    })
}

fn r_plan(v: &JVal) -> Result<ListsSnapshot, String> {
    Ok(ListsSnapshot {
        theta: v.get("theta")?.f64bits()?,
        m2l: r_lists(v.get("m2l")?)?,
        p2p: r_lists(v.get("p2p")?)?,
        rev_m2l: r_lists(v.get("rev_m2l")?)?,
        rev_p2p: r_lists(v.get("rev_p2p")?)?,
        node_counts: v
            .get("node_counts")?
            .arr()?
            .iter()
            .map(r_counts)
            .collect::<Result<_, _>>()?,
        totals: r_counts(v.get("totals")?)?,
        body_count: r_u32_vec(v.get("body_count")?)?,
        stamp: r_u32_vec(v.get("stamp")?)?,
        epoch: v.get("epoch")?.u32()?,
    })
}

fn r_engine(v: &JVal) -> Result<EngineSnapshot, String> {
    let theta = v.get("theta")?.f64bits()?;
    if !(theta > 0.0 && theta <= 1.0) {
        return Err(format!("MAC theta {theta} out of (0, 1]"));
    }
    let domain = v.get("domain")?.opt(|d| {
        let a = d.arr()?;
        if a.len() != 4 {
            return Err("domain needs [cx, cy, cz, hw]".into());
        }
        Ok((
            Vec3::new(a[0].f64bits()?, a[1].f64bits()?, a[2].f64bits()?),
            a[3].f64bits()?,
        ))
    })?;
    Ok(EngineSnapshot {
        params: FmmParams {
            order: v.get("order")?.usize()?,
            mac: Mac::new(theta),
            max_level: u16::try_from(v.get("max_level")?.u64()?)
                .map_err(|_| "max_level overflows u16".to_string())?,
        },
        domain,
        tree: r_tree(v.get("tree")?)?,
        plan: v.get("plan")?.opt(r_plan)?,
        plan_stale: v.get("plan_stale")?.boolean()?,
    })
}

fn r_filter(v: &JVal) -> Result<FilterSnapshot, String> {
    Ok(FilterSnapshot {
        window: v
            .get("window")?
            .arr()?
            .iter()
            .map(JVal::f64bits)
            .collect::<Result<_, _>>()?,
        k: v.get("k")?.usize()?,
        alpha: v.get("alpha")?.f64bits()?,
        ewma: v.get("ewma")?.opt(JVal::f64bits)?,
        rejected: v.get("rejected")?.u64()?,
    })
}

fn r_strategy(name: &str) -> Result<Strategy, String> {
    match name {
        "static_s" => Ok(Strategy::StaticS),
        "enforce_only" => Ok(Strategy::EnforceOnly),
        "full" => Ok(Strategy::Full),
        other => Err(format!("unknown strategy '{other}'")),
    }
}

fn r_state(name: &str) -> Result<LbState, String> {
    match name {
        "search" => Ok(LbState::Search),
        "incremental" => Ok(LbState::Incremental),
        "observation" => Ok(LbState::Observation),
        "frozen" => Ok(LbState::Frozen),
        "recovery" => Ok(LbState::Recovery),
        other => Err(format!("unknown LB state '{other}'")),
    }
}

fn r_balancer(v: &JVal) -> Result<BalancerSnapshot, String> {
    Ok(BalancerSnapshot {
        cfg: LbConfig {
            s_min: v.get("s_min")?.usize()?,
            s_max: v.get("s_max")?.usize()?,
            eps_switch_s: v.get("eps")?.f64bits()?,
            regression_frac: v.get("reg_frac")?.f64bits()?,
            use_fgo: v.get("use_fgo")?.boolean()?,
            fgo_batch_frac: v.get("fgo_batch")?.f64bits()?,
            fgo_max_rounds: v.get("fgo_rounds")?.usize()?,
            incr_factor: v.get("incr_factor")?.f64bits()?,
            incr_tol: v.get("incr_tol")?.f64bits()?,
            regression_hysteresis: v.get("hysteresis")?.usize()?,
        },
        strategy: r_strategy(v.get("strategy")?.str()?)?,
        state: r_state(v.get("state")?.str()?)?,
        s: v.get("s")?.usize()?,
        lo: v.get("lo")?.usize()?,
        hi: v.get("hi")?.usize()?,
        best_compute: v.get("best")?.f64bits()?,
        incr_best: v.get("incr_best")?.opt(|p| {
            let a = p.arr()?;
            if a.len() != 2 {
                return Err("incr_best needs [s, t]".into());
            }
            Ok((a[0].usize()?, a[1].f64bits()?))
        })?,
        incr_dir_up: v.get("incr_dir_up")?.opt(JVal::boolean)?,
        incr_flipped: v.get("incr_flipped")?.boolean()?,
        regress_count: v.get("regress_count")?.usize()?,
        last_online: v.get("last_online")?.opt(JVal::usize)?,
        reset_best_next: v.get("reset_best_next")?.boolean()?,
    })
}

fn r_record(v: &JVal) -> Result<StepRecord, String> {
    let a = v.arr()?;
    if a.len() != 9 {
        return Err("step record needs 9 fields".into());
    }
    Ok(StepRecord {
        step: a[0].usize()?,
        s: a[1].usize()?,
        state: r_state(a[2].str()?)?,
        t_cpu: a[3].f64bits()?,
        t_gpu: a[4].f64bits()?,
        t_lb: a[5].f64bits()?,
        gpu_efficiency: a[6].f64bits()?,
        p2p_interactions: a[7].u64()?,
        m2l_ops: a[8].u64()?,
    })
}

fn r_fault_event(v: &JVal) -> Result<FaultEvent, String> {
    let a = v.arr()?;
    match a.first().ok_or("empty fault event")?.str()? {
        "gpu_slowdown" => Ok(FaultEvent::GpuSlowdown {
            device: a[1].usize()?,
            factor: a[2].f64bits()?,
        }),
        "gpu_dropout" => Ok(FaultEvent::GpuDropout {
            device: a[1].usize()?,
        }),
        "gpu_recover" => Ok(FaultEvent::GpuRecover {
            device: a[1].usize()?,
        }),
        "cpu_load" => Ok(FaultEvent::ExternalCpuLoad {
            factor: a[1].f64bits()?,
        }),
        "noise" => Ok(FaultEvent::TimingNoise {
            sigma: a[1].f64bits()?,
        }),
        other => Err(format!("unknown fault event '{other}'")),
    }
}

fn r_tracker(v: &JVal) -> Result<TrackerSnapshot, String> {
    let model_coeffs = v.get("model")?.arr()?;
    if model_coeffs.len() != 9 {
        return Err("model needs 9 coefficients".into());
    }
    let mut model = CostModel::new();
    model.c_p2m = model_coeffs[0].f64bits()?;
    model.c_m2m = model_coeffs[1].f64bits()?;
    model.c_m2l = model_coeffs[2].f64bits()?;
    model.c_l2l = model_coeffs[3].f64bits()?;
    model.c_l2p = model_coeffs[4].f64bits()?;
    model.c_cpu_pair = model_coeffs[5].f64bits()?;
    model.c_node = model_coeffs[6].f64bits()?;
    model.parallel_rate = model_coeffs[7].f64bits()?;
    model.c_gpu_pair = model_coeffs[8].f64bits()?;
    model.set_observed(v.get("model_observed")?.boolean()?);
    let mut events = Vec::new();
    for tf in v.get("faults")?.arr()? {
        let pair = tf.arr()?;
        if pair.len() != 2 {
            return Err("timed fault needs [step, event]".into());
        }
        events.push(TimedFault {
            step: pair[0].usize()?,
            event: r_fault_event(&pair[1])?,
        });
    }
    // Rebuild through push(): within-step insertion order is preserved for
    // an already-sorted script, and cross-step order is re-established even
    // if the text was hand-edited.
    let mut faults = FaultSchedule::new();
    for tf in events {
        faults.push(tf.step, tf.event);
    }
    let gpu_status = v.get("gpu_status")?.opt(|st| {
        st.arr()?
            .iter()
            .map(|d| {
                let a = d.arr()?;
                if a.len() != 2 {
                    return Err("device status needs [online, slowdown]".into());
                }
                Ok(DeviceStatus {
                    online: a[0].u64()? != 0,
                    slowdown: a[1].f64bits()?,
                })
            })
            .collect::<Result<Vec<DeviceStatus>, String>>()
    })?;
    let flat = v.get("pos")?.arr()?;
    if flat.len() % 3 != 0 {
        return Err("pos stream length not a multiple of 3".into());
    }
    let mut pos = Vec::with_capacity(flat.len() / 3);
    for xyz in flat.chunks_exact(3) {
        pos.push(Vec3::new(
            xyz[0].f64bits()?,
            xyz[1].f64bits()?,
            xyz[2].f64bits()?,
        ));
    }
    Ok(TrackerSnapshot {
        engine: r_engine(v.get("engine")?)?,
        model,
        balancer: r_balancer(v.get("balancer")?)?,
        records: v
            .get("records")?
            .arr()?
            .iter()
            .map(r_record)
            .collect::<Result<_, _>>()?,
        first: v.get("first")?.boolean()?,
        faults,
        gpu_status,
        cpu_load: v.get("cpu_load")?.f64bits()?,
        noise_sigma: v.get("noise_sigma")?.f64bits()?,
        noise_state: v.get("noise_state")?.u64()?,
        filter_cpu: r_filter(v.get("filter_cpu")?)?,
        filter_gpu: r_filter(v.get("filter_gpu")?)?,
        pos,
    })
}

// ---- envelope verification ----

/// Parse and verify the envelope: schema version, kind, and checksum over
/// the exact payload bytes. Returns the parsed payload.
fn open(text: &str, kind: &str) -> Result<JVal, Error> {
    let root = Parser::new(text)
        .value()
        .map_err(|e| Error::Checkpoint(format!("parse: {e}")))?;
    let version = root
        .get("schema_version")
        .and_then(|v| v.u64())
        .map_err(Error::Checkpoint)?;
    if version != SCHEMA_VERSION as u64 {
        return Err(Error::Checkpoint(format!(
            "schema version {version} unsupported (this build reads {SCHEMA_VERSION})"
        )));
    }
    let got_kind = root
        .get("kind")
        .and_then(|v| v.str().map(str::to_string))
        .map_err(Error::Checkpoint)?;
    if got_kind != kind {
        return Err(Error::Checkpoint(format!(
            "checkpoint kind '{got_kind}', expected '{kind}'"
        )));
    }
    let declared = root
        .get("checksum")
        .and_then(|v| v.str().map(str::to_string))
        .map_err(Error::Checkpoint)?;
    // The payload is the last envelope field; checksum the exact bytes the
    // writer produced (envelopes are machine-generated, not pretty-printed).
    let marker = "\"payload\":";
    let at = text
        .find(marker)
        .ok_or_else(|| Error::Checkpoint("no payload field".into()))?;
    let payload_text = &text[at + marker.len()..text.len() - 1];
    let actual = format!("{:016x}", fnv1a64(payload_text.as_bytes()));
    if declared != actual {
        return Err(Error::Checkpoint(format!(
            "checksum mismatch: declared {declared}, computed {actual}"
        )));
    }
    root.get("payload").cloned().map_err(Error::Checkpoint)
}

/// Parse and verify an engine checkpoint.
pub fn engine_from_json(text: &str) -> Result<EngineSnapshot, Error> {
    let payload = open(text, "engine")?;
    r_engine(&payload).map_err(Error::Checkpoint)
}

/// Parse and verify a tracker checkpoint.
pub fn tracker_from_json(text: &str) -> Result<TrackerSnapshot, Error> {
    let payload = open(text, "tracker")?;
    r_tracker(&payload).map_err(Error::Checkpoint)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{FmmParams, HeteroNode};
    use crate::engine::FmmEngine;
    use fmm_math::GravityKernel;
    use nbody::plummer;

    fn sample_engine() -> FmmEngine<GravityKernel> {
        let b = plummer(800, 1.0, 1.0, 901);
        let mut e = FmmEngine::new(GravityKernel::default(), FmmParams::default(), &b.pos, 48);
        e.refresh_lists();
        e
    }

    #[test]
    fn engine_checkpoint_roundtrips_exactly() {
        let e = sample_engine();
        let snap = e.checkpoint_state();
        let text = engine_to_json(&snap);
        let back = engine_from_json(&text).unwrap();
        assert_eq!(back.tree.nodes.len(), snap.tree.nodes.len());
        assert_eq!(back.tree.order, snap.tree.order);
        assert_eq!(back.tree.codes, snap.tree.codes);
        for (a, b) in back.tree.nodes.iter().zip(&snap.tree.nodes) {
            assert_eq!(a.center.x.to_bits(), b.center.x.to_bits());
            assert_eq!(a.half_width.to_bits(), b.half_width.to_bits());
            assert_eq!(a.begin, b.begin);
            assert_eq!(a.end, b.end);
            assert_eq!(a.collapsed, b.collapsed);
        }
        let (pa, pb) = (back.plan.unwrap(), snap.plan.unwrap());
        assert_eq!(pa.m2l, pb.m2l);
        assert_eq!(pa.p2p, pb.p2p);
        assert_eq!(pa.rev_m2l, pb.rev_m2l);
        assert_eq!(pa.epoch, pb.epoch);
        // Serialization is deterministic: same state, same bytes.
        assert_eq!(text, engine_to_json(&e.checkpoint_state()));
    }

    #[test]
    fn bit_patterns_survive_nan_and_negative_zero() {
        let mut out = String::new();
        for v in [f64::NAN, f64::INFINITY, -0.0, 1.0e-308] {
            out.clear();
            w_f64(&mut out, v);
            let parsed = Parser::new(&out).value().unwrap();
            assert_eq!(parsed.f64bits().unwrap().to_bits(), v.to_bits());
        }
    }

    #[test]
    fn tampered_payload_fails_checksum() {
        let e = sample_engine();
        let text = engine_to_json(&e.checkpoint_state());
        // Flip one digit inside the payload.
        let at = text.find("\"payload\":").unwrap() + 20;
        let mut bytes = text.into_bytes();
        let old = bytes[at];
        bytes[at] = if old == b'3' { b'4' } else { b'3' };
        let tampered = String::from_utf8(bytes).unwrap();
        let err = engine_from_json(&tampered);
        assert!(
            matches!(err, Err(Error::Checkpoint(ref m)) if m.contains("checksum") || m.contains("parse")),
            "{err:?}"
        );
    }

    #[test]
    fn wrong_schema_version_is_refused() {
        let e = sample_engine();
        let text = engine_to_json(&e.checkpoint_state());
        let bumped = text.replacen("\"schema_version\":1", "\"schema_version\":2", 1);
        let err = engine_from_json(&bumped).unwrap_err();
        assert!(
            matches!(err, Error::Checkpoint(ref m) if m.contains("schema version")),
            "{err}"
        );
    }

    #[test]
    fn wrong_kind_is_refused() {
        let e = sample_engine();
        let text = engine_to_json(&e.checkpoint_state());
        let err = tracker_from_json(&text).unwrap_err();
        assert!(
            matches!(err, Error::Checkpoint(ref m) if m.contains("kind")),
            "{err}"
        );
    }

    #[test]
    fn restored_engine_passes_audits() {
        let e = sample_engine();
        let text = engine_to_json(&e.checkpoint_state());
        let snap = engine_from_json(&text).unwrap();
        let restored = FmmEngine::restore_state(GravityKernel::default(), snap).unwrap();
        restored.audit_tree().unwrap();
        restored.audit_plan().unwrap();
        assert_eq!(restored.tree().s_value(), e.tree().s_value());
        assert_eq!(restored.plan_epoch(), e.plan_epoch());
    }

    #[test]
    fn garbage_inputs_produce_structured_errors() {
        for text in ["", "{", "[1,2", "{\"schema_version\":true}", "nonsense"] {
            assert!(matches!(engine_from_json(text), Err(Error::Checkpoint(_))));
        }
        let node = HeteroNode::serial();
        let _ = node; // silence unused in cfg(test) without gpus
    }
}
