//! Outlier-robust conditioning of measured step times.
//!
//! The balancer's state machine reacts to *every* measured time: a single
//! OS-scheduling spike in Observation can fire the 5% regression trigger
//! and cost an `Enforce_S` pass for nothing. [`TimingFilter`] sits between
//! the raw measurement and the balancer: a median over the last `k`
//! samples once enough history exists, an EWMA while history is short, and
//! outright rejection of non-finite or negative samples (the estimate
//! simply holds). Both estimators are positively homogeneous — scaling all
//! inputs by `c > 0` scales the output by `c` — so the filter never biases
//! the CPU/GPU *ratio* the balancer steers by.
//!
//! Whenever the balancer changes the decomposition (rebuild, enforce,
//! FGO), past samples describe a tree that no longer exists; callers must
//! [`TimingFilter::reset`] then.

/// Median-of-k filter with EWMA warm-up. Never panics, for any input.
#[derive(Clone, Debug)]
pub struct TimingFilter {
    window: Vec<f64>,
    k: usize,
    alpha: f64,
    ewma: Option<f64>,
    rejected: u64,
}

/// Plain-data image of a [`TimingFilter`] for checkpointing: the exact
/// window contents (order matters — it is a FIFO), warm-up EWMA and
/// configuration, so a restored filter produces bit-identical estimates.
#[derive(Clone, Debug)]
pub struct FilterSnapshot {
    pub window: Vec<f64>,
    pub k: usize,
    pub alpha: f64,
    pub ewma: Option<f64>,
    pub rejected: u64,
}

impl Default for TimingFilter {
    /// Median over 5 samples, EWMA α = 0.5 during warm-up.
    fn default() -> Self {
        TimingFilter::new(5, 0.5)
    }
}

impl TimingFilter {
    /// `k` = median window length (min 1); `alpha` = EWMA weight of the
    /// newest sample, clamped into (0, 1].
    pub fn new(k: usize, alpha: f64) -> Self {
        let alpha = if alpha.is_finite() {
            alpha.clamp(1e-3, 1.0)
        } else {
            0.5
        };
        TimingFilter {
            window: Vec::new(),
            k: k.max(1),
            alpha,
            ewma: None,
            rejected: 0,
        }
    }

    /// Ingest one raw measurement and return the filtered estimate.
    /// Non-finite or negative samples are rejected — counted in
    /// [`TimingFilter::rejected`] so the caller can surface them as a
    /// telemetry counter — and the previous estimate (or 0.0 before any
    /// valid sample) is returned unchanged.
    pub fn push(&mut self, raw: f64) -> f64 {
        if !raw.is_finite() || raw < 0.0 {
            self.rejected += 1;
            return self.estimate().unwrap_or(0.0);
        }
        self.ewma = Some(match self.ewma {
            None => raw,
            Some(e) => self.alpha * raw + (1.0 - self.alpha) * e,
        });
        self.window.push(raw);
        if self.window.len() > self.k {
            self.window.remove(0);
        }
        self.estimate().unwrap_or(0.0)
    }

    /// Current estimate without ingesting anything: the window median once
    /// at least 3 valid samples exist, the EWMA before that, `None` before
    /// any valid sample.
    pub fn estimate(&self) -> Option<f64> {
        if self.window.len() >= 3 {
            let mut sorted = self.window.clone();
            sorted.sort_by(f64::total_cmp);
            let n = sorted.len();
            return Some(if n % 2 == 1 {
                sorted[n / 2]
            } else {
                0.5 * (sorted[n / 2 - 1] + sorted[n / 2])
            });
        }
        self.ewma
    }

    /// Number of valid samples currently in the median window.
    pub fn samples(&self) -> usize {
        self.window.len()
    }

    /// Lifetime count of rejected (NaN / infinite / negative) samples.
    /// Survives [`TimingFilter::reset`]: rejection is a property of the
    /// measurement stream, not of the current decomposition.
    pub fn rejected(&self) -> u64 {
        self.rejected
    }

    /// Drop all history (the decomposition changed; old times are stale).
    pub fn reset(&mut self) {
        self.window.clear();
        self.ewma = None;
    }

    /// Capture the filter's complete state for checkpointing.
    pub fn snapshot(&self) -> FilterSnapshot {
        FilterSnapshot {
            window: self.window.clone(),
            k: self.k,
            alpha: self.alpha,
            ewma: self.ewma,
            rejected: self.rejected,
        }
    }

    /// Reconstruct a filter from a snapshot verbatim.
    pub fn from_snapshot(snap: FilterSnapshot) -> Self {
        TimingFilter {
            window: snap.window,
            k: snap.k.max(1),
            alpha: snap.alpha,
            ewma: snap.ewma,
            rejected: snap.rejected,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn warm_up_uses_ewma_then_median_takes_over() {
        let mut f = TimingFilter::new(5, 0.5);
        assert_eq!(f.push(1.0), 1.0);
        assert_eq!(f.push(3.0), 2.0); // EWMA: 0.5·3 + 0.5·1
        assert_eq!(f.push(2.0), 2.0); // median of [1, 3, 2]
        assert_eq!(f.samples(), 3);
    }

    #[test]
    fn median_suppresses_a_spike() {
        let mut f = TimingFilter::default();
        for _ in 0..4 {
            f.push(1.0);
        }
        // A 100× spike barely moves the estimate...
        assert_eq!(f.push(100.0), 1.0);
        // ...and the estimate recovers completely as the spike ages out.
        for _ in 0..5 {
            f.push(1.0);
        }
        assert_eq!(f.estimate(), Some(1.0));
    }

    #[test]
    fn rejects_invalid_samples_without_panicking() {
        let mut f = TimingFilter::default();
        assert_eq!(f.push(f64::NAN), 0.0);
        assert_eq!(f.push(-1.0), 0.0);
        assert_eq!(f.push(f64::INFINITY), 0.0);
        f.push(2.0);
        assert_eq!(f.push(f64::NAN), 2.0);
        assert_eq!(f.samples(), 1);
    }

    #[test]
    fn rejection_counter_tracks_garbage_across_resets() {
        let mut f = TimingFilter::default();
        f.push(f64::NAN);
        f.push(1.0);
        f.push(-3.0);
        f.push(f64::INFINITY);
        assert_eq!(f.rejected(), 3);
        f.reset();
        assert_eq!(f.rejected(), 3, "rejections outlive a decomposition reset");
        f.push(f64::NEG_INFINITY);
        assert_eq!(f.rejected(), 4);
    }

    #[test]
    fn snapshot_roundtrip_is_bit_identical() {
        let mut f = TimingFilter::new(4, 0.3);
        for x in [0.5, f64::NAN, 0.7, 0.1, 0.9, 0.2] {
            f.push(x);
        }
        let mut g = TimingFilter::from_snapshot(f.snapshot());
        assert_eq!(g.rejected(), f.rejected());
        assert_eq!(g.estimate(), f.estimate());
        for x in [0.4, 0.6, 0.8] {
            let a = f.push(x);
            let b = g.push(x);
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn reset_clears_history() {
        let mut f = TimingFilter::default();
        f.push(5.0);
        f.push(5.0);
        f.reset();
        assert_eq!(f.estimate(), None);
        assert_eq!(f.push(1.0), 1.0);
    }

    #[test]
    fn reset_mid_stream_restarts_warm_up() {
        let mut f = TimingFilter::new(5, 0.5);
        for x in [1.0, 2.0, 3.0, 4.0, 5.0] {
            f.push(x);
        }
        assert_eq!(f.estimate(), Some(3.0), "median active before reset");
        f.reset();
        assert_eq!(f.samples(), 0);
        assert_eq!(f.estimate(), None);
        // Warm-up restarts from scratch: the first post-reset sample seeds
        // the EWMA, untainted by pre-reset history.
        assert_eq!(f.push(10.0), 10.0);
        assert_eq!(f.push(20.0), 15.0); // EWMA: 0.5·20 + 0.5·10
        assert_eq!(f.samples(), 2);
    }

    #[test]
    fn k1_window_never_reaches_median_and_stays_ewma() {
        // With k = 1 the window holds a single sample, so the 3-sample
        // median threshold is unreachable: the EWMA governs forever.
        let mut f = TimingFilter::new(1, 0.5);
        assert_eq!(f.push(4.0), 4.0);
        assert_eq!(f.push(8.0), 6.0); // 0.5·8 + 0.5·4
        assert_eq!(f.push(2.0), 4.0); // 0.5·2 + 0.5·6
        assert_eq!(f.samples(), 1, "window capped at one sample");
        assert_eq!(f.estimate(), Some(4.0));
    }

    #[test]
    fn alpha_one_ewma_degenerates_to_last_sample() {
        let mut f = TimingFilter::new(9, 1.0);
        assert_eq!(f.push(3.0), 3.0);
        assert_eq!(f.push(7.0), 7.0, "α = 1 keeps only the newest sample");
        // Once the median activates it takes over from the degenerate EWMA.
        assert_eq!(f.push(5.0), 5.0); // median of [3, 7, 5]
        f.reset();
        assert_eq!(f.push(0.25), 0.25);
        assert_eq!(f.push(0.75), 0.75);
    }

    #[test]
    fn scale_equivariant() {
        let xs = [0.2, 0.5, 0.1, 0.9, 0.4, 0.3, 0.8];
        let c = 37.5;
        let mut a = TimingFilter::default();
        let mut b = TimingFilter::default();
        for &x in &xs {
            let ya = a.push(x);
            let yb = b.push(c * x);
            assert!((yb - c * ya).abs() <= 1e-12 * yb.abs().max(1.0));
        }
    }
}
