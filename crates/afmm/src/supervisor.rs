//! The step supervisor: integrity auditing plus a self-healing escalation
//! ladder around [`StrategyTracker::step`].
//!
//! Every supervised step is audited ([`FmmEngine::audit_tree`],
//! [`FmmEngine::audit_plan`], [`FmmEngine::audit_bodies`], plan-epoch
//! monotonicity). When a step fails — an error, a failed audit, or a
//! contained panic — the supervisor walks an escalation ladder, cheapest
//! rung first:
//!
//! 1. **Retry** — transient disturbances (a fault window that closed, one
//!    garbage measurement) clear on their own.
//! 2. **Rebuild** — throw away the tree and plan and re-derive both from
//!    the positions ([`StrategyTracker::heal_rebuild`]). Heals any cached-
//!    state corruption; skipped when the positions themselves are corrupt.
//! 3. **CPU-only fallback** — drop the GPU system and run everything on the
//!    cores ([`StrategyTracker::force_cpu_only`]): a degraded but
//!    self-consistent machine.
//! 4. **Restore** — rebuild the whole tracker from the last checkpoint
//!    ([`StrategyTracker::restore`]), rewinding to a known-good state.
//!
//! Each rung emits a `supervisor.*` telemetry event and bumps a counter in
//! the recorder's [`telemetry::MetricsRegistry`]; the [`SupervisorReport`]
//! mirrors the counts for recorder-less runs. A run is declared
//! unrecoverable ([`Error::Unrecoverable`]) only when the last rung fails.

use crate::engine::FmmEngine;
use crate::error::Error;
use crate::simulate::{StepRecord, StrategyTracker};
use crate::HeteroNode;
use fmm_math::Kernel;
use geom::Vec3;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Tunables of the supervisor.
#[derive(Clone, Copy, Debug)]
pub struct SupervisorConfig {
    /// Rung-1 retries before escalating.
    pub max_retries: usize,
    /// Audit every N-th step (1 = every step, 0 = audits off).
    pub audit_every: usize,
    /// Take an automatic checkpoint every N-th step (0 = manual only via
    /// [`Supervisor::checkpoint_now`]).
    pub checkpoint_every: usize,
}

impl Default for SupervisorConfig {
    fn default() -> Self {
        SupervisorConfig {
            max_retries: 1,
            audit_every: 1,
            checkpoint_every: 0,
        }
    }
}

/// The rung that produced a supervised step's result.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RecoveryAction {
    /// The step succeeded first try.
    None,
    Retry,
    Rebuild,
    CpuFallback,
    Restore,
}

impl RecoveryAction {
    pub fn name(self) -> &'static str {
        match self {
            RecoveryAction::None => "none",
            RecoveryAction::Retry => "retry",
            RecoveryAction::Rebuild => "rebuild",
            RecoveryAction::CpuFallback => "cpu_fallback",
            RecoveryAction::Restore => "restore",
        }
    }
}

/// Lifetime counts of everything the supervisor did.
#[derive(Clone, Copy, Debug, Default)]
pub struct SupervisorReport {
    pub retries: u64,
    pub rebuilds: u64,
    pub cpu_fallbacks: u64,
    pub restores: u64,
    pub audit_failures: u64,
    pub panics_contained: u64,
    pub checkpoints_taken: u64,
}

impl SupervisorReport {
    /// Did any rung above "none" ever fire?
    pub fn any_recovery(&self) -> bool {
        self.retries + self.rebuilds + self.cpu_fallbacks + self.restores > 0
    }
}

/// Escalation-ladder wrapper around one [`StrategyTracker`]. The kernel is
/// `Copy` (stateless configuration) so restore rungs can rebuild engines;
/// the node configuration is captured pristine at construction for the same
/// reason.
pub struct Supervisor<K: Kernel + Copy> {
    tracker: StrategyTracker<K>,
    kernel: K,
    node_config: HeteroNode,
    cfg: SupervisorConfig,
    last_checkpoint: Option<String>,
    last_epoch: Option<u32>,
    report: SupervisorReport,
}

impl<K: Kernel + Copy> Supervisor<K> {
    pub fn new(tracker: StrategyTracker<K>, cfg: SupervisorConfig) -> Self {
        let kernel = tracker.engine().kernel;
        let node_config = tracker.node().clone();
        Supervisor {
            tracker,
            kernel,
            node_config,
            cfg,
            last_checkpoint: None,
            last_epoch: None,
            report: SupervisorReport::default(),
        }
    }

    pub fn tracker(&self) -> &StrategyTracker<K> {
        &self.tracker
    }

    /// Mutable tracker access — used by the chaos harness to inject
    /// corruption *through* the supervisor it is trying to defeat.
    pub fn tracker_mut(&mut self) -> &mut StrategyTracker<K> {
        &mut self.tracker
    }

    pub fn report(&self) -> &SupervisorReport {
        &self.report
    }

    /// The next step's index (also: number of completed step records).
    pub fn step_index(&self) -> usize {
        self.tracker.records().len()
    }

    /// The serialized text of the last checkpoint, if one has been taken.
    pub fn last_checkpoint(&self) -> Option<&str> {
        self.last_checkpoint.as_deref()
    }

    /// Take a checkpoint of the current tracker state + positions.
    pub fn checkpoint_now(&mut self, pos: &[Vec3]) -> &str {
        let text = self.tracker.checkpoint(pos);
        self.report.checkpoints_taken += 1;
        let rec = self.tracker.recorder().clone();
        if rec.is_enabled() {
            rec.event(
                "supervisor.checkpoint",
                vec![
                    ("step", telemetry::Value::U64(self.step_index() as u64)),
                    ("bytes", telemetry::Value::U64(text.len() as u64)),
                ],
            );
            rec.counter_add("supervisor.checkpoints", 1);
        }
        self.last_checkpoint = Some(text);
        self.last_checkpoint.as_deref().unwrap()
    }

    /// Rebuild the tracker from the last checkpoint (the chaos harness's
    /// kill-and-restore event rides on this too). Returns the checkpointed
    /// positions — the trajectory point the run rewound to.
    pub fn restore_from_checkpoint(&mut self) -> Result<Vec<Vec3>, Error> {
        let text = self.last_checkpoint.clone().ok_or(Error::NoCheckpoint)?;
        let recorder = self.tracker.recorder().clone();
        let (mut tracker, pos) =
            StrategyTracker::restore(self.kernel, self.node_config.clone(), &text)?;
        if recorder.is_enabled() {
            recorder.counter_add("supervisor.restores", 1);
            recorder.event(
                "supervisor.restore",
                vec![(
                    "rewound_to",
                    telemetry::Value::U64(tracker.records().len() as u64),
                )],
            );
            tracker.set_recorder(recorder);
        }
        self.tracker = tracker;
        self.last_epoch = None;
        self.report.restores += 1;
        Ok(pos)
    }

    /// Do positions, tree and plan all pass their audits right now?
    /// Checkpoints must only capture state that does — a snapshot of a
    /// corrupted plan would poison the last-resort restore rung (restore
    /// re-audits on load and refuses it).
    fn state_healthy(&self, pos: &[Vec3]) -> bool {
        FmmEngine::<K>::audit_bodies(pos).is_ok()
            && self.tracker.engine().audit_tree().is_ok()
            && self.tracker.engine().audit_plan().is_ok()
    }

    /// Take a checkpoint only if the full audit passes; returns whether one
    /// was taken. The chaos harness's kill-and-restore event uses this so a
    /// just-injected corruption is never enshrined as the rollback point.
    pub fn checkpoint_if_healthy(&mut self, pos: &[Vec3]) -> bool {
        if self.state_healthy(pos) {
            self.checkpoint_now(pos);
            true
        } else {
            false
        }
    }

    /// One supervised step: audit, and on any failure walk the escalation
    /// ladder. Returns the completed record and the rung that produced it.
    ///
    /// After a [`RecoveryAction::Restore`] the run has rewound — drive the
    /// trajectory by [`Supervisor::step_index`], not by loop count.
    pub fn step(&mut self, pos: &[Vec3]) -> Result<(StepRecord, RecoveryAction), Error> {
        if self.cfg.checkpoint_every > 0
            && self.step_index().is_multiple_of(self.cfg.checkpoint_every)
        {
            self.checkpoint_if_healthy(pos);
        }
        match self.attempt(pos) {
            Ok(rec) => Ok((rec, RecoveryAction::None)),
            Err(e) => self.escalate(pos, e),
        }
    }

    /// Run one audited step attempt, containing panics. Audits run *before*
    /// the step: the step's own rebin/refresh re-derives much of the cached
    /// state, so corruption injected between steps would be laundered by
    /// the very step that consumes it — and a corrupted plan must be caught
    /// before it produces a wrong answer, not after.
    fn attempt(&mut self, pos: &[Vec3]) -> Result<StepRecord, Error> {
        // A non-finite position would silently poison Morton codes and
        // every float sum downstream — refuse before stepping.
        FmmEngine::<K>::audit_bodies(pos)?;
        if self.cfg.audit_every != 0 && self.step_index().is_multiple_of(self.cfg.audit_every) {
            let audits = self
                .tracker
                .engine()
                .audit_tree()
                .and_then(|()| self.tracker.engine().audit_plan());
            if let Err(e) = audits {
                self.note_audit_failure(&e);
                return Err(e);
            }
        }
        let stepped = catch_unwind(AssertUnwindSafe(|| self.tracker.step(pos)));
        let rec = match stepped {
            Ok(result) => result?,
            Err(_) => {
                self.report.panics_contained += 1;
                let recorder = self.tracker.recorder().clone();
                if recorder.is_enabled() {
                    recorder.counter_add("supervisor.panics", 1);
                }
                return Err(Error::StepPanicked);
            }
        };
        self.watch_epoch();
        Ok(rec)
    }

    /// Post-step epoch watch: the plan epoch only moves forward under
    /// patches and refreshes. A rewind while the audits pass is a
    /// legitimate rebuild (which resets the stamps too); it is logged so
    /// soak runs can correlate it, not escalated.
    fn watch_epoch(&mut self) {
        let epoch = self.tracker.engine().plan_epoch();
        if let (Some(e), Some(last)) = (epoch, self.last_epoch) {
            if e < last {
                let rec = self.tracker.recorder().clone();
                if rec.is_enabled() {
                    rec.event(
                        "supervisor.epoch_reset",
                        vec![
                            ("from", telemetry::Value::U64(last as u64)),
                            ("to", telemetry::Value::U64(e as u64)),
                        ],
                    );
                }
            }
        }
        if epoch.is_some() {
            self.last_epoch = epoch;
        }
    }

    fn note_audit_failure(&mut self, e: &Error) {
        self.report.audit_failures += 1;
        let rec = self.tracker.recorder().clone();
        if rec.is_enabled() {
            rec.counter_add("supervisor.audit_failures", 1);
            rec.event(
                "supervisor.audit_failed",
                vec![("error", telemetry::Value::Str(e.to_string()))],
            );
        }
    }

    fn emit_rung(&self, rung: &'static str, counter: &'static str, err: &Error) {
        let rec = self.tracker.recorder().clone();
        if rec.is_enabled() {
            rec.counter_add(counter, 1);
            rec.event(
                rung,
                vec![
                    ("step", telemetry::Value::U64(self.step_index() as u64)),
                    ("error", telemetry::Value::Str(err.to_string())),
                ],
            );
        }
    }

    /// Walk the ladder. Each rung re-attempts a full audited step; the
    /// first healthy step wins.
    fn escalate(
        &mut self,
        pos: &[Vec3],
        first_err: Error,
    ) -> Result<(StepRecord, RecoveryAction), Error> {
        let mut last_err = first_err;
        // Rung 1: retry.
        for _ in 0..self.cfg.max_retries {
            self.report.retries += 1;
            self.emit_rung("supervisor.retry", "supervisor.retries", &last_err);
            match self.attempt(pos) {
                Ok(r) => return Ok((r, RecoveryAction::Retry)),
                Err(e) => last_err = e,
            }
        }
        // Rungs 2 and 3 rebuild from the positions — pointless if the
        // positions themselves are the corruption.
        if FmmEngine::<K>::audit_bodies(pos).is_ok() {
            // Rung 2: rebuild tree + plan from scratch.
            self.report.rebuilds += 1;
            self.emit_rung("supervisor.rebuild", "supervisor.rebuilds", &last_err);
            self.tracker.heal_rebuild(pos);
            match self.attempt(pos) {
                Ok(r) => return Ok((r, RecoveryAction::Rebuild)),
                Err(e) => last_err = e,
            }
            // Rung 3: drop the GPUs, run everything on the cores.
            if self.tracker.node().gpus.is_some() {
                self.report.cpu_fallbacks += 1;
                self.emit_rung(
                    "supervisor.cpu_fallback",
                    "supervisor.cpu_fallbacks",
                    &last_err,
                );
                self.tracker.force_cpu_only();
                self.tracker.heal_rebuild(pos);
                match self.attempt(pos) {
                    Ok(r) => return Ok((r, RecoveryAction::CpuFallback)),
                    Err(e) => last_err = e,
                }
            }
        }
        // Rung 4: restore from the last checkpoint and re-step from the
        // checkpointed positions.
        self.emit_rung(
            "supervisor.restore",
            "supervisor.restore_attempts",
            &last_err,
        );
        let saved_pos = self
            .restore_from_checkpoint()
            .map_err(|e| Error::Unrecoverable(Box::new(e)))?;
        match self.attempt(&saved_pos) {
            Ok(r) => Ok((r, RecoveryAction::Restore)),
            Err(e) => Err(Error::Unrecoverable(Box::new(e))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::balance::{LbConfig, Strategy};
    use crate::config::FmmParams;
    use fmm_math::GravityKernel;
    use nbody::plummer;

    fn tracker(n: usize, seed: u64) -> StrategyTracker<GravityKernel> {
        let b = plummer(n, 1.0, 1.0, seed);
        StrategyTracker::new(
            GravityKernel::default(),
            FmmParams::default(),
            HeteroNode::system_a(10, 2),
            Strategy::Full,
            LbConfig {
                eps_switch_s: 2e-3,
                ..Default::default()
            },
            &b.pos,
            None,
        )
    }

    fn positions(n: usize, seed: u64) -> Vec<Vec3> {
        plummer(n, 1.0, 1.0, seed).pos
    }

    #[test]
    fn healthy_run_never_escalates() {
        let pos = positions(1200, 601);
        let mut sup = Supervisor::new(tracker(1200, 601), SupervisorConfig::default());
        for _ in 0..10 {
            let (_, action) = sup.step(&pos).unwrap();
            assert_eq!(action, RecoveryAction::None);
        }
        assert!(!sup.report().any_recovery());
        assert_eq!(sup.report().audit_failures, 0);
    }

    #[test]
    fn plan_corruption_is_audited_and_healed_by_rebuild() {
        let pos = positions(1500, 602);
        let mut sup = Supervisor::new(tracker(1500, 602), SupervisorConfig::default());
        // Let the balancer settle: while it is still searching, it rebuilds
        // the plan itself each step, which would heal the corruption before
        // the audit ever sees it.
        for _ in 0..30 {
            sup.step(&pos).unwrap();
        }
        let corrupted = sup
            .tracker_mut()
            .engine_mut()
            .plan_mut_for_chaos()
            .map(|p| p.corrupt_truncate_list())
            .unwrap_or(false);
        assert!(corrupted, "live plan should be available for corruption");
        let (_, action) = sup.step(&pos).unwrap();
        assert_eq!(action, RecoveryAction::Rebuild);
        assert!(sup.report().audit_failures >= 1);
        assert_eq!(sup.report().rebuilds, 1);
        // Healed: subsequent steps are clean.
        let (_, action) = sup.step(&pos).unwrap();
        assert_eq!(action, RecoveryAction::None);
    }

    #[test]
    fn stale_epoch_corruption_is_caught() {
        let pos = positions(1500, 603);
        let mut sup = Supervisor::new(tracker(1500, 603), SupervisorConfig::default());
        // Drift the positions so patches bump stamps past zero, then hold
        // still so the settled balancer stops rebuilding on its own.
        let mut p = pos.clone();
        for _ in 0..20 {
            sup.step(&p).unwrap();
            for q in &mut p {
                *q *= 0.97;
            }
        }
        for _ in 0..10 {
            sup.step(&p).unwrap();
        }
        let corrupted = sup
            .tracker_mut()
            .engine_mut()
            .plan_mut_for_chaos()
            .map(|pl| pl.corrupt_stale_epoch())
            .unwrap_or(false);
        if !corrupted {
            // No stamp ever moved (fully static plan): nothing to corrupt.
            return;
        }
        let (_, action) = sup.step(&p).unwrap();
        assert_ne!(action, RecoveryAction::None, "corruption must not pass");
        assert!(sup.report().audit_failures >= 1);
    }

    #[test]
    fn nan_positions_escalate_to_restore() {
        let pos = positions(1000, 604);
        let mut sup = Supervisor::new(
            tracker(1000, 604),
            SupervisorConfig {
                checkpoint_every: 2,
                ..Default::default()
            },
        );
        for _ in 0..5 {
            sup.step(&pos).unwrap();
        }
        let mut bad = pos.clone();
        bad[17].x = f64::NAN;
        let before = sup.step_index();
        let (_, action) = sup.step(&bad).unwrap();
        assert_eq!(action, RecoveryAction::Restore);
        assert_eq!(sup.report().restores, 1);
        assert!(
            sup.step_index() <= before,
            "restore rewinds to the checkpoint"
        );
        // The restored tracker keeps working on clean positions.
        let (_, action) = sup.step(&pos).unwrap();
        assert_eq!(action, RecoveryAction::None);
    }

    #[test]
    fn corruption_without_checkpoint_is_unrecoverable() {
        let pos = positions(800, 605);
        let mut sup = Supervisor::new(tracker(800, 605), SupervisorConfig::default());
        sup.step(&pos).unwrap();
        let mut bad = pos.clone();
        bad[3].y = f64::INFINITY;
        let err = sup.step(&bad).unwrap_err();
        assert!(matches!(err, Error::Unrecoverable(inner) if *inner == Error::NoCheckpoint));
    }
}
