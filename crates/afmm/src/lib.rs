//! The adaptive fast multipole method of **Overman, Prins, Miller, Minion —
//! "Dynamic Load Balancing of the Adaptive Fast Multipole Method in
//! Heterogeneous Systems" (IEEE IPDPSW 2013)**, reproduced on a *virtual*
//! heterogeneous node.
//!
//! The crate wires the workspace's substrates together:
//!
//! * [`FmmEngine`] — the AFMM solver (exact physics, rayon data
//!   parallelism) over the adaptive octree of the `octree` crate and the
//!   cartesian expansions of `fmm-math`;
//! * [`exec`] — virtual-node timing: the far-field work becomes the paper's
//!   recursive task DAG scheduled on `sched-sim`'s cores, and the near-field
//!   work becomes all-pairs kernels on `gpu-sim`'s devices;
//! * [`CostModel`] — the observational per-operation cost coefficients and
//!   the `T = Σ M(op)·C(op)` time prediction (paper §IV.D);
//! * [`LoadBalancer`] — the Search / Incremental / Observation state
//!   machine, `Enforce_S`, and `FineGrainedOptimize` (paper §V–VII);
//! * [`GravitySim`] / [`StokesSim`] / [`StrategyTracker`] — time-stepping
//!   drivers for the paper's gravitational and immersed-boundary workloads
//!   and for strategy comparisons.
//!
//! ```
//! use afmm::{FmmEngine, FmmParams};
//! use fmm_math::GravityKernel;
//!
//! // A tiny gravitational solve.
//! let pos = vec![
//!     geom::Vec3::new(0.0, 0.0, 0.0),
//!     geom::Vec3::new(1.0, 0.0, 0.0),
//!     geom::Vec3::new(0.0, 1.0, 0.0),
//! ];
//! let mass = vec![1.0; 3];
//! let mut engine = FmmEngine::new(GravityKernel::default(), FmmParams::default(), &pos, 8);
//! let sol = engine.solve(&pos, &mass);
//! assert!(sol.field.iter().all(|a| a.is_finite()));
//! ```

mod balance;
pub mod calibration;
pub mod chaos;
pub mod checkpoint;
mod config;
mod cost;
pub mod dag;
mod engine;
mod error;
pub mod exec;
mod filter;
mod plan;
pub mod replay;
mod simulate;
pub mod supervisor;

pub use balance::{
    fine_grained_optimize, lbtime, search_best_s_cpu_only, BalancerSnapshot, FgoOutcome, LbConfig,
    LbReport, LbState, LoadBalancer, Strategy,
};
pub use calibration::{CalibrationCell, CalibrationKey, CalibrationStore};
pub use chaos::{ChaosEvent, ChaosPlan, TimedChaos};
pub use checkpoint::{EngineSnapshot, TrackerSnapshot, SCHEMA_VERSION};
pub use config::{CpuSpec, FmmParams, HeteroNode};
pub use cost::{CostModel, Prediction};
pub use engine::{FmmEngine, FmmSolution};
pub use error::Error;
pub use filter::{FilterSnapshot, TimingFilter};
pub use plan::ExecutionPlan;
pub use supervisor::{RecoveryAction, Supervisor, SupervisorConfig, SupervisorReport};
// Fault-injection vocabulary, re-exported so drivers need only `afmm`.
pub use dag::{
    lower_plan, measure_spans, DagLowering, PhaseSpan, PhaseSpans, PhaseTag, SchedXray, TaskTrace,
};
pub use exec::{
    build_gpu_jobs, build_task_graph, build_task_graph_with, phase_times, record_phase_spans,
    time_step, time_step_policy, time_step_with_jobs, time_step_with_jobs_policy, ExecPolicy,
    PhaseTimes, SchedMode, TimingReport, DEFAULT_PHASE_TOLERANCE,
};
pub use gpu_sim::{DeviceStatus, FaultEvent, FaultSchedule, TimedFault};
pub use replay::{
    diff_traces, validate_trace, validate_trace_report, DiffEntry, TraceDiff, ValidateOptions,
    ValidationReport, Violation,
};
pub use simulate::{GravitySim, RunSummary, StepRecord, StokesSim, StrategyTracker};
