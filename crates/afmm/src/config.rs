use gpu_sim::{GpuSpec, GpuSystem};
use octree::Mac;
use sched_sim::MemoryModel;

/// Numerical parameters of the AFMM.
#[derive(Clone, Copy, Debug)]
pub struct FmmParams {
    /// Expansion order p ("retained terms"). The paper uses spherical
    /// harmonics at p = 10; the cartesian substitution reaches comparable
    /// accuracy around p = 6–8 and the experiments default to 4 for speed.
    pub order: usize,
    /// Multipole acceptance criterion of the dual-tree traversal.
    pub mac: Mac,
    /// Deepest octree level subdivision may reach.
    pub max_level: u16,
}

impl Default for FmmParams {
    fn default() -> Self {
        FmmParams {
            order: 6,
            mac: Mac::default(),
            max_level: 21,
        }
    }
}

impl FmmParams {
    pub fn with_order(order: usize) -> Self {
        FmmParams {
            order,
            ..Default::default()
        }
    }
}

/// The virtual multicore CPU of the heterogeneous node.
#[derive(Clone, Copy, Debug)]
pub struct CpuSpec {
    /// Active cores (each OpenMP/rayon worker is pinned to one, per the
    /// paper).
    pub cores: usize,
    /// Effective flops per second per core on this code.
    pub rate_flops: f64,
    /// Per-task spawn/steal overhead in seconds.
    pub task_overhead_s: f64,
    /// Cache/bandwidth scaling behaviour.
    pub memory: MemoryModel,
}

impl CpuSpec {
    /// One socket's worth of the paper's Test System A CPU (Xeon X5670,
    /// 2.93 GHz Westmere): ~1.2 Gflop/s effective per core on this
    /// expansion-heavy code (2010-era scalar FP with frequent sqrt/div).
    pub fn xeon_x5670(cores: usize) -> Self {
        assert!(cores >= 1);
        CpuSpec {
            cores,
            rate_flops: 1.2e9,
            task_overhead_s: 2.0e-6,
            memory: MemoryModel::ideal(),
        }
    }

    /// The paper's Test System B CPU (4 × Xeon X7560 Nehalem-EX, 32 cores),
    /// with the cache-bonus/bandwidth-saturation model that shapes Fig 6.
    pub fn x7560(cores: usize) -> Self {
        assert!((1..=32).contains(&cores));
        CpuSpec {
            cores,
            rate_flops: 1.0e9,
            task_overhead_s: 2.0e-6,
            memory: MemoryModel::nehalem_ex(),
        }
    }

    pub fn to_sim_config(self) -> sched_sim::SimConfig {
        sched_sim::SimConfig {
            cores: self.cores,
            rate: self.rate_flops,
            task_overhead: self.task_overhead_s,
            memory: self.memory,
        }
    }
}

/// A heterogeneous compute node: a multicore CPU plus zero or more GPUs.
///
/// With GPUs, near-field (P2P) work runs on the GPU system and far-field
/// expansion work on the CPU cores — the paper's split. Without GPUs,
/// everything (including P2P) runs on the CPU cores, which is also how the
/// serial baseline of Fig 7 is defined.
#[derive(Clone, Debug)]
pub struct HeteroNode {
    pub cpu: CpuSpec,
    pub gpus: Option<GpuSystem>,
}

impl HeteroNode {
    /// The paper's Test System A: `cores` Xeon X5670 cores (≤ 12) and
    /// `n_gpus` Tesla C2050s (≤ 4 in the paper; any positive count here).
    pub fn system_a(cores: usize, n_gpus: usize) -> Self {
        let gpus = if n_gpus == 0 {
            None
        } else {
            Some(GpuSystem::homogeneous(n_gpus, GpuSpec::tesla_c2050()).expect("n_gpus > 0 here"))
        };
        HeteroNode {
            cpu: CpuSpec::xeon_x5670(cores),
            gpus,
        }
    }

    /// The paper's Test System B: up to 32 Nehalem-EX cores, no GPUs.
    pub fn system_b(cores: usize) -> Self {
        HeteroNode {
            cpu: CpuSpec::x7560(cores),
            gpus: None,
        }
    }

    /// Single CPU core, no GPUs — the serial baseline.
    pub fn serial() -> Self {
        HeteroNode {
            cpu: CpuSpec::xeon_x5670(1),
            gpus: None,
        }
    }

    pub fn num_gpus(&self) -> usize {
        self.gpus.as_ref().map_or(0, GpuSystem::num_gpus)
    }

    /// Devices currently online (installed minus dropped-out). Work is only
    /// offloaded when this is positive; see [`crate::exec::time_step`].
    pub fn num_online_gpus(&self) -> usize {
        self.gpus.as_ref().map_or(0, GpuSystem::num_online)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_consistent() {
        let a = HeteroNode::system_a(10, 4);
        assert_eq!(a.cpu.cores, 10);
        assert_eq!(a.num_gpus(), 4);
        let b = HeteroNode::system_b(32);
        assert_eq!(b.cpu.cores, 32);
        assert_eq!(b.num_gpus(), 0);
        let s = HeteroNode::serial();
        assert_eq!(s.cpu.cores, 1);
        assert_eq!(s.num_gpus(), 0);
    }

    #[test]
    fn sim_config_roundtrip() {
        let c = CpuSpec::xeon_x5670(8).to_sim_config();
        assert_eq!(c.cores, 8);
        assert_eq!(c.rate, 1.2e9);
    }

    #[test]
    fn zero_gpus_means_cpu_only() {
        assert!(HeteroNode::system_a(4, 0).gpus.is_none());
    }
}
