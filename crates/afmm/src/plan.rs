//! The persistent execution plan: incrementally-patched interaction lists
//! and op counts ([`octree::IncrementalLists`]) plus the GPU near-field job
//! list derived from them.
//!
//! The plan is the single materialization of "what this tree will execute":
//! the CPU task DAG, the time-prediction multiplicities `M(op)` and the GPU
//! partition walk all read from it. Collapse/PushDown/rebin go *through* the
//! plan so the lists are patched in O(neighborhood) instead of re-traversed,
//! and the cached job list is regenerated lazily only when an edit actually
//! invalidated it.

use gpu_sim::P2pJob;
use octree::{IncrementalLists, InteractionLists, Mac, NodeId, Octree, OpCounts, PlanRefresh};

use crate::exec::build_gpu_jobs;

/// Interaction lists + op counts + GPU job list for one tree, kept alive and
/// patched across tree edits.
#[derive(Clone, Debug)]
pub struct ExecutionPlan {
    inc: IncrementalLists,
    jobs: Vec<P2pJob>,
    jobs_dirty: bool,
}

impl ExecutionPlan {
    /// Full build from a fresh dual traversal of `tree`.
    pub fn build(tree: &Octree, mac: Mac) -> Self {
        ExecutionPlan {
            inc: IncrementalLists::build(tree, mac),
            jobs: Vec::new(),
            jobs_dirty: true,
        }
    }

    /// Attach a telemetry recorder; forwarded to the incremental lists so
    /// their `plan.*` rebuild/patch/refresh metrics flow into it.
    pub fn set_recorder(&mut self, rec: telemetry::Recorder) {
        self.inc.set_recorder(rec);
    }

    /// Discard all incremental state and re-derive from scratch.
    pub fn rebuild(&mut self, tree: &Octree) {
        self.inc.rebuild(tree);
        self.jobs_dirty = true;
    }

    pub fn mac(&self) -> Mac {
        self.inc.mac()
    }

    pub fn lists(&self) -> &InteractionLists {
        self.inc.lists()
    }

    pub fn counts(&self) -> OpCounts {
        self.inc.counts()
    }

    /// Collapse `id` in `tree`, patching lists, counts and job validity.
    /// False (nothing changed) when the collapse is a no-op.
    pub fn apply_collapse(&mut self, tree: &mut Octree, id: NodeId) -> bool {
        let did = self.inc.apply_collapse(tree, id);
        self.jobs_dirty |= did;
        did
    }

    /// Push down `id` in `tree`, patching lists, counts and job validity.
    /// False (nothing changed) when the push-down is refused.
    pub fn apply_push_down(&mut self, tree: &mut Octree, id: NodeId) -> bool {
        let did = self.inc.apply_push_down(tree, id);
        self.jobs_dirty |= did;
        did
    }

    /// Reconcile counts after body motion (rebin). Falls back to a full
    /// rebuild when a visible cell flipped between empty and non-empty.
    pub fn refresh_counts(&mut self, tree: &Octree) -> PlanRefresh {
        let outcome = self.inc.refresh_counts(tree);
        if outcome != PlanRefresh::Clean {
            self.jobs_dirty = true;
        }
        outcome
    }

    /// Regenerate the cached GPU job list if any edit invalidated it.
    pub fn ensure_jobs(&mut self, tree: &Octree) {
        if self.jobs_dirty {
            self.jobs = build_gpu_jobs(tree, self.inc.lists());
            self.jobs_dirty = false;
        }
    }

    /// The cached job list. Call [`ExecutionPlan::ensure_jobs`] first; a
    /// dirty cache here is a bug in the caller.
    pub fn jobs(&self) -> &[P2pJob] {
        debug_assert!(!self.jobs_dirty, "reading a stale GPU job cache");
        &self.jobs
    }

    /// Convenience: refresh-if-needed and borrow the job list.
    pub fn gpu_jobs(&mut self, tree: &Octree) -> &[P2pJob] {
        self.ensure_jobs(tree);
        &self.jobs
    }

    /// Monotone patch/refresh epoch of the underlying incremental lists.
    pub fn epoch(&self) -> u32 {
        self.inc.epoch()
    }

    /// Structural heap footprint: the incremental lists plus the cached GPU
    /// job list (spine and per-job source-count vectors, at capacity).
    pub fn heap_bytes(&self) -> usize {
        self.inc.heap_bytes()
            + self.jobs.capacity() * std::mem::size_of::<P2pJob>()
            + self
                .jobs
                .iter()
                .map(|j| j.source_counts.capacity() * std::mem::size_of::<usize>())
                .sum::<usize>()
    }

    /// Capture the list state for checkpointing. The GPU job cache is *not*
    /// part of the snapshot: [`crate::build_gpu_jobs`] is a deterministic
    /// function of tree + lists, so a restored plan regenerates the exact
    /// same jobs lazily.
    pub fn snapshot(&self) -> octree::ListsSnapshot {
        self.inc.snapshot()
    }

    /// Reconstruct a plan from a snapshot verbatim, with the job cache
    /// marked dirty for lazy regeneration.
    pub fn from_snapshot(snap: octree::ListsSnapshot) -> Result<Self, String> {
        Ok(ExecutionPlan {
            inc: IncrementalLists::from_snapshot(snap)?,
            jobs: Vec::new(),
            jobs_dirty: true,
        })
    }

    /// Verify list invariants against `tree` (see
    /// [`IncrementalLists::audit`]).
    pub fn audit(&self, tree: &Octree) -> Result<(), String> {
        self.inc.audit(tree)
    }

    /// Chaos-harness corruption hook: see
    /// [`IncrementalLists::corrupt_truncate_list`].
    pub fn corrupt_truncate_list(&mut self) -> bool {
        self.inc.corrupt_truncate_list()
    }

    /// Chaos-harness corruption hook: see
    /// [`IncrementalLists::corrupt_stale_epoch`].
    pub fn corrupt_stale_epoch(&mut self) -> bool {
        self.inc.corrupt_stale_epoch()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nbody::plummer;
    use octree::{build_adaptive, BuildParams};

    #[test]
    fn jobs_cache_tracks_edits() {
        let b = plummer(2000, 1.0, 1.0, 301);
        let mut tree = build_adaptive(&b.pos, BuildParams::with_s(32));
        let mut plan = ExecutionPlan::build(&tree, Mac::default());
        let jobs = plan.gpu_jobs(&tree).to_vec();
        assert_eq!(jobs, build_gpu_jobs(&tree, plan.lists()));
        let victim = tree
            .visible_nodes()
            .into_iter()
            .find(|&id| !tree.node(id).is_leaf() && id != Octree::ROOT)
            .unwrap();
        assert!(plan.apply_collapse(&mut tree, victim));
        let jobs = plan.gpu_jobs(&tree).to_vec();
        assert_eq!(jobs, build_gpu_jobs(&tree, plan.lists()));
        assert!(plan.apply_push_down(&mut tree, victim));
        let jobs = plan.gpu_jobs(&tree).to_vec();
        assert_eq!(jobs, build_gpu_jobs(&tree, plan.lists()));
    }

    #[test]
    fn refresh_marks_jobs_dirty_only_on_change() {
        let b = plummer(1500, 1.0, 1.0, 302);
        let mut tree = build_adaptive(&b.pos, BuildParams::with_s(48));
        let mut plan = ExecutionPlan::build(&tree, Mac::default());
        plan.ensure_jobs(&tree);
        assert_eq!(plan.refresh_counts(&tree), octree::PlanRefresh::Clean);
        assert!(!plan.jobs_dirty, "clean refresh must keep the job cache");
        let moved: Vec<_> = b.pos.iter().map(|p| *p * 0.9).collect();
        tree.rebin(&moved);
        let outcome = plan.refresh_counts(&tree);
        assert_ne!(outcome, octree::PlanRefresh::Clean);
        let jobs = plan.gpu_jobs(&tree).to_vec();
        assert_eq!(jobs, build_gpu_jobs(&tree, plan.lists()));
    }
}
