//! The dynamic load balancer of the paper's §V–VII: a state machine driven
//! by each step's realized CPU/GPU times, steering the leaf capacity S
//! globally (Search / Incremental) and the tree locally (`Enforce_S`,
//! `FineGrainedOptimize`).
//!
//! Module layout:
//!
//! * this file — the public vocabulary ([`Strategy`], [`LbState`],
//!   [`LbConfig`], [`LbReport`]) and the [`LoadBalancer`] shell with its
//!   per-step dispatch;
//! * [`states`] — the per-state step logic and `FineGrainedOptimize`;
//! * [`lbtime`] — the modeled wall-time accounting of every maintenance
//!   operation (the paper's "LB time", Table II).

pub mod lbtime;
mod states;
#[cfg(test)]
mod tests;

pub use states::{fine_grained_optimize, search_best_s_cpu_only, FgoOutcome};

use crate::config::HeteroNode;
use crate::cost::CostModel;
use crate::engine::FmmEngine;
use fmm_math::Kernel;

/// The three load-balancing strategies compared in the paper's §IX.A.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Strategy {
    /// Strategy 1: optimal S chosen at the outset by binary search, then the
    /// tree structure is never modified (bodies are still re-binned).
    StaticS,
    /// Strategy 2: initial binary search; afterwards, when the compute time
    /// regresses more than 5% past the best seen, call `Enforce_S` and take
    /// the next step's time as the new best.
    EnforceOnly,
    /// Strategy 3: the full machine — Search / Incremental / Observation
    /// states with `Enforce_S` and `FineGrainedOptimize`.
    Full,
}

impl Strategy {
    pub fn name(self) -> &'static str {
        match self {
            Strategy::StaticS => "static_s",
            Strategy::EnforceOnly => "enforce_only",
            Strategy::Full => "full",
        }
    }
}

/// The load balancer's state (paper §V). Each state persists over multiple
/// time steps; `Frozen` is the terminal state of [`Strategy::StaticS`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LbState {
    Search,
    Incremental,
    Observation,
    Frozen,
    /// A device dropped out or came back: re-bisect S over a warm-started
    /// bracket around the last settled value (Strategy 3 only).
    Recovery,
}

impl LbState {
    pub fn name(self) -> &'static str {
        match self {
            LbState::Search => "search",
            LbState::Incremental => "incremental",
            LbState::Observation => "observation",
            LbState::Frozen => "frozen",
            LbState::Recovery => "recovery",
        }
    }
}

/// Tunables of the load balancer; defaults are the paper's values where it
/// states them (0.15 s state-switch threshold, 5% regression trigger).
#[derive(Clone, Copy, Debug)]
pub struct LbConfig {
    pub s_min: usize,
    pub s_max: usize,
    /// Leave Search / skip FGO when |t_cpu − t_gpu| is at most this (paper:
    /// 0.15 s).
    pub eps_switch_s: f64,
    /// Observation acts when compute time exceeds best by this fraction
    /// (paper: 5%).
    pub regression_frac: f64,
    /// Enable `FineGrainedOptimize` (off reproduces the paper's Fig 10
    /// baseline).
    pub use_fgo: bool,
    /// FGO batch size as a fraction of the active leaf count.
    pub fgo_batch_frac: f64,
    /// Upper bound on FGO batches per invocation.
    pub fgo_max_rounds: usize,
    /// Multiplicative S step of the Incremental state.
    pub incr_factor: f64,
    /// Incremental keeps walking while compute stays within this fraction
    /// of the walk's best — one 1.15× step often lands on a local bump
    /// (block-quantization effects) that a strict per-step comparison would
    /// mistake for the optimum.
    pub incr_tol: f64,
    /// Observation only acts after this many *consecutive* regressing steps
    /// (1 = the paper's immediate trigger). Raising it makes the balancer
    /// ignore one-off measurement spikes at the cost of reacting later.
    pub regression_hysteresis: usize,
}

impl Default for LbConfig {
    fn default() -> Self {
        LbConfig {
            s_min: 8,
            s_max: 4096,
            eps_switch_s: 0.15,
            regression_frac: 0.05,
            use_fgo: true,
            fgo_batch_frac: 0.03,
            fgo_max_rounds: 12,
            incr_factor: 1.15,
            incr_tol: 0.05,
            regression_hysteresis: 1,
        }
    }
}

/// What the balancer did after a step, and what it cost (modeled wall time,
/// charged as the paper's "LB time").
#[derive(Clone, Copy, Debug, Default)]
pub struct LbReport {
    pub lb_time: f64,
    pub rebuilt: bool,
    pub enforced: bool,
    /// Tree edits went through the live execution plan (patch cost charged)
    /// instead of invalidating it (rebuild/re-traversal cost charged).
    pub patched: bool,
    pub fgo_rounds: usize,
}

/// Plain-data image of a [`LoadBalancer`] for checkpointing: every field of
/// the state machine, so a restored balancer makes bit-identical decisions
/// from the next step onward.
#[derive(Clone, Debug)]
pub struct BalancerSnapshot {
    pub cfg: LbConfig,
    pub strategy: Strategy,
    pub state: LbState,
    pub s: usize,
    pub lo: usize,
    pub hi: usize,
    pub best_compute: f64,
    pub incr_best: Option<(usize, f64)>,
    pub incr_dir_up: Option<bool>,
    pub incr_flipped: bool,
    pub regress_count: usize,
    pub last_online: Option<usize>,
    pub reset_best_next: bool,
}

/// The dynamic load balancer of §V–VII. Construction and per-step dispatch
/// live here; the state-step bodies are in [`states`].
#[derive(Clone, Debug)]
pub struct LoadBalancer {
    pub cfg: LbConfig,
    strategy: Strategy,
    state: LbState,
    s: usize,
    lo: usize,
    hi: usize,
    best_compute: f64,
    /// Best (S, measured compute) of the current Incremental walk.
    incr_best: Option<(usize, f64)>,
    /// Walk direction (`true` = grow S); seeded from dominance on entry.
    incr_dir_up: Option<bool>,
    /// The one allowed direction reversal has been spent.
    incr_flipped: bool,
    /// Consecutive Observation steps past the regression limit.
    regress_count: usize,
    /// Online device count seen last step (None until a GPU node is seen).
    last_online: Option<usize>,
    /// Strategy 2: the next step's compute time becomes the new best.
    reset_best_next: bool,
    /// Flight recorder for state transitions and maintenance outcomes.
    rec: telemetry::Recorder,
}

pub(super) fn geometric_mid(lo: usize, hi: usize) -> usize {
    ((lo.max(1) as f64 * hi.max(1) as f64).sqrt().round() as usize).clamp(lo, hi)
}

impl LoadBalancer {
    pub fn new(strategy: Strategy, cfg: LbConfig) -> Self {
        assert!(cfg.s_min >= 1 && cfg.s_min < cfg.s_max);
        let s = geometric_mid(cfg.s_min, cfg.s_max);
        LoadBalancer {
            cfg,
            strategy,
            state: LbState::Search,
            s,
            lo: cfg.s_min,
            hi: cfg.s_max,
            best_compute: f64::INFINITY,
            incr_best: None,
            incr_dir_up: None,
            incr_flipped: false,
            regress_count: 0,
            last_online: None,
            reset_best_next: false,
            rec: telemetry::Recorder::disabled(),
        }
    }

    /// Attach a telemetry recorder: every state transition, `Enforce_S`
    /// outcome, FGO batch decision and Recovery entry is emitted as a
    /// structured `lb.*` event through it.
    pub fn set_recorder(&mut self, rec: telemetry::Recorder) {
        self.rec = rec;
    }

    /// The balancer's telemetry handle.
    pub fn recorder(&self) -> &telemetry::Recorder {
        &self.rec
    }

    /// Flight-record one `Enforce_S` outcome.
    pub(super) fn record_enforce(&self, outcome: &octree::EnforceOutcome, patched: bool) {
        self.rec.event(
            "lb.enforce",
            vec![
                ("collapses", telemetry::Value::U64(outcome.collapses as u64)),
                ("pushdowns", telemetry::Value::U64(outcome.pushdowns as u64)),
                ("patched", telemetry::Value::Bool(patched)),
                ("s", telemetry::Value::U64(self.s as u64)),
            ],
        );
    }

    /// Move to `to`, emitting an `lb.transition` flight-recorder event with
    /// the cause and the S in force at the moment of the switch.
    pub(super) fn transition(&mut self, to: LbState, cause: &'static str) {
        if self.state != to {
            self.rec.event(
                "lb.transition",
                vec![
                    ("from", telemetry::Value::Str(self.state.name().into())),
                    ("to", telemetry::Value::Str(to.name().into())),
                    ("cause", telemetry::Value::Str(cause.into())),
                    ("s", telemetry::Value::U64(self.s as u64)),
                ],
            );
            self.rec.counter_add("lb.transitions", 1);
        }
        self.state = to;
    }

    /// Capture the complete state-machine state for checkpointing.
    pub fn snapshot(&self) -> BalancerSnapshot {
        BalancerSnapshot {
            cfg: self.cfg,
            strategy: self.strategy,
            state: self.state,
            s: self.s,
            lo: self.lo,
            hi: self.hi,
            best_compute: self.best_compute,
            incr_best: self.incr_best,
            incr_dir_up: self.incr_dir_up,
            incr_flipped: self.incr_flipped,
            regress_count: self.regress_count,
            last_online: self.last_online,
            reset_best_next: self.reset_best_next,
        }
    }

    /// Reconstruct a balancer from a snapshot verbatim (recorder starts
    /// disabled; reattach one with [`LoadBalancer::set_recorder`]).
    pub fn from_snapshot(snap: BalancerSnapshot) -> Self {
        LoadBalancer {
            cfg: snap.cfg,
            strategy: snap.strategy,
            state: snap.state,
            s: snap.s,
            lo: snap.lo,
            hi: snap.hi,
            best_compute: snap.best_compute,
            incr_best: snap.incr_best,
            incr_dir_up: snap.incr_dir_up,
            incr_flipped: snap.incr_flipped,
            regress_count: snap.regress_count,
            last_online: snap.last_online,
            reset_best_next: snap.reset_best_next,
            rec: telemetry::Recorder::disabled(),
        }
    }

    pub fn strategy(&self) -> Strategy {
        self.strategy
    }

    pub fn state(&self) -> LbState {
        self.state
    }

    /// The S value the balancer currently targets.
    pub fn s(&self) -> usize {
        self.s
    }

    pub fn best_compute(&self) -> f64 {
        self.best_compute
    }

    /// Feed one completed step's realized times and let the balancer prepare
    /// the tree for the next step (possibly rebuilding at a new S, enforcing
    /// the current S, or fine-grain optimizing). `pos` must be the *updated*
    /// positions — the paper performs tree optimizations after the position
    /// update.
    pub fn post_step<K: Kernel>(
        &mut self,
        engine: &mut FmmEngine<K>,
        model: &CostModel,
        node: &HeteroNode,
        pos: &[geom::Vec3],
        t_cpu: f64,
        t_gpu: f64,
    ) -> LbReport {
        let compute = t_cpu.max(t_gpu);
        let mut rep = LbReport::default();
        if self.reset_best_next {
            self.best_compute = compute;
            self.reset_best_next = false;
        }
        // Resilience: a device dropping out (or coming back) invalidates the
        // settled balance point outright — the measurement that just arrived
        // describes a machine that no longer exists. Only the full strategy
        // reacts; StaticS/EnforceOnly are the paper's less adaptive
        // baselines and keep their decomposition.
        if let Some(gpus) = node.gpus.as_ref() {
            let now = gpus.num_online();
            let before = self.last_online.replace(now);
            if matches!(before, Some(b) if b != now)
                && self.strategy == Strategy::Full
                && self.state != LbState::Frozen
            {
                self.enter_recovery(engine, node, pos, now, &mut rep);
                return rep;
            }
        }
        match self.state {
            LbState::Frozen => {}
            LbState::Search | LbState::Recovery => {
                self.search_step(engine, node, pos, t_cpu, t_gpu, &mut rep)
            }
            LbState::Incremental => {
                self.incremental_step(engine, model, node, pos, t_cpu, t_gpu, &mut rep)
            }
            LbState::Observation => self.observation_step(engine, model, node, compute, &mut rep),
        }
        rep
    }
}
