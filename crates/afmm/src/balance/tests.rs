use super::*;
use crate::config::FmmParams;
use fmm_math::{GravityKernel, Kernel};
use nbody::plummer;

struct Harness {
    engine: FmmEngine<GravityKernel>,
    model: CostModel,
    node: HeteroNode,
    pos: Vec<geom::Vec3>,
}

impl Harness {
    fn new(n: usize, node: HeteroNode, s0: usize) -> Self {
        let b = plummer(n, 1.0, 1.0, 401);
        let engine = FmmEngine::new(GravityKernel::default(), FmmParams::default(), &b.pos, s0);
        Harness {
            engine,
            model: CostModel::new(),
            node,
            pos: b.pos,
        }
    }

    /// One timing-only step: refresh, time, observe. Returns (cpu, gpu).
    fn measure(&mut self) -> (f64, f64) {
        let counts = self.engine.refresh_lists();
        let flops = self.engine.kernel.op_flops(self.engine.expansion_ops());
        let t = self.engine.time_step(&flops, &self.node).unwrap();
        self.model.observe(&counts, &t, &flops, &self.node);
        (t.t_cpu, t.t_gpu)
    }
}

fn cfg_for_tests() -> LbConfig {
    // The scaled-down workloads run in milliseconds, so scale the
    // paper's 0.15 s switching threshold accordingly.
    LbConfig {
        eps_switch_s: 2e-3,
        ..Default::default()
    }
}

#[test]
fn search_converges_to_crossover() {
    let mut h = Harness::new(6000, HeteroNode::system_a(10, 2), 64);
    let mut lb = LoadBalancer::new(Strategy::Full, cfg_for_tests());
    h.engine.rebuild(&h.pos.clone(), lb.s());
    let mut steps = 0;
    while lb.state() == LbState::Search && steps < 25 {
        let (tc, tg) = h.measure();
        let pos = h.pos.clone();
        lb.post_step(&mut h.engine, &h.model, &h.node, &pos, tc, tg);
        steps += 1;
    }
    assert!(steps < 25, "binary search did not converge");
    assert_ne!(lb.state(), LbState::Search);
    // At the S the search settled on, CPU and GPU times are of the same
    // order (within the bracket resolution).
    let (tc, tg) = h.measure();
    let ratio = tc.max(tg) / tc.min(tg).max(1e-12);
    assert!(
        ratio < 4.0,
        "crossover imbalance ratio {ratio} (tc={tc}, tg={tg})"
    );
}

#[test]
fn search_typically_short_like_paper() {
    // Paper: "this state typically persists for fewer than 15 time
    // steps".
    let mut h = Harness::new(4000, HeteroNode::system_a(10, 1), 64);
    let mut lb = LoadBalancer::new(Strategy::Full, cfg_for_tests());
    h.engine.rebuild(&h.pos.clone(), lb.s());
    let mut steps = 0;
    while lb.state() == LbState::Search {
        let (tc, tg) = h.measure();
        let pos = h.pos.clone();
        lb.post_step(&mut h.engine, &h.model, &h.node, &pos, tc, tg);
        steps += 1;
        assert!(steps <= 15, "search ran {steps} steps");
    }
}

#[test]
fn static_strategy_freezes_after_search() {
    let mut h = Harness::new(2000, HeteroNode::system_a(4, 1), 64);
    let mut lb = LoadBalancer::new(Strategy::StaticS, cfg_for_tests());
    for _ in 0..30 {
        let (tc, tg) = h.measure();
        let pos = h.pos.clone();
        lb.post_step(&mut h.engine, &h.model, &h.node, &pos, tc, tg);
        if lb.state() == LbState::Frozen {
            break;
        }
    }
    assert_eq!(lb.state(), LbState::Frozen);
    // Frozen: no further tree modifications whatever the times.
    let nodes = h.engine.tree().num_nodes();
    let pos = h.pos.clone();
    let rep = lb.post_step(&mut h.engine, &h.model, &h.node, &pos, 100.0, 1.0);
    assert_eq!(rep.lb_time, 0.0);
    assert!(!rep.rebuilt && !rep.enforced);
    assert_eq!(h.engine.tree().num_nodes(), nodes);
}

#[test]
fn cpu_only_node_skips_search() {
    let mut h = Harness::new(1000, HeteroNode::serial(), 64);
    let mut lb = LoadBalancer::new(Strategy::Full, cfg_for_tests());
    let (tc, tg) = h.measure();
    let pos = h.pos.clone();
    lb.post_step(&mut h.engine, &h.model, &h.node, &pos, tc, tg);
    assert_ne!(lb.state(), LbState::Search);
}

#[test]
fn fgo_never_worsens_predicted_compute() {
    let mut h = Harness::new(6000, HeteroNode::system_a(10, 2), 64);
    // Deliberately imbalanced tree: far too coarse (GPU overloaded).
    h.engine.rebuild(&h.pos.clone(), 1024);
    h.measure();
    let counts = h.engine.refresh_lists();
    let before = h.model.predict(&counts, &h.node);
    let out = fine_grained_optimize(&mut h.engine, &h.model, &h.node, &cfg_for_tests());
    assert!(
        out.prediction.compute() <= before.compute() * (1.0 + 1e-9),
        "FGO worsened prediction: {} -> {}",
        before.compute(),
        out.prediction.compute()
    );
    assert!(out.lb_time > 0.0);
}

#[test]
fn fgo_bridges_gpu_overload_with_pushdowns() {
    // Needs enough bodies that splitting a batch of neighbouring heavy
    // leaves converts P2P pairs into M2L (both sides of a pair must
    // refine); below ~15k bodies the batches cannot bite.
    let mut h = Harness::new(20000, HeteroNode::system_a(10, 2), 64);
    h.engine.rebuild(&h.pos.clone(), 1024);
    h.measure();
    let counts = h.engine.refresh_lists();
    let before = h.model.predict(&counts, &h.node);
    assert!(!before.cpu_dominant(), "setup should be GPU-bound");
    let out = fine_grained_optimize(&mut h.engine, &h.model, &h.node, &cfg_for_tests());
    assert!(out.rounds > 0, "expected at least one pushdown batch");
    assert!(
        out.prediction.t_gpu < before.t_gpu,
        "pushdowns must shed GPU work"
    );
    h.engine.tree().check_invariants().unwrap();
}

#[test]
fn fgo_bridges_cpu_overload_with_collapses() {
    let mut h = Harness::new(6000, HeteroNode::system_a(4, 4), 64);
    h.engine.rebuild(&h.pos.clone(), 12);
    h.measure();
    let counts = h.engine.refresh_lists();
    let before = h.model.predict(&counts, &h.node);
    assert!(before.cpu_dominant(), "setup should be CPU-bound");
    let out = fine_grained_optimize(&mut h.engine, &h.model, &h.node, &cfg_for_tests());
    assert!(out.rounds > 0, "expected at least one collapse batch");
    assert!(
        out.prediction.t_cpu < before.t_cpu,
        "collapses must shed CPU work"
    );
    h.engine.tree().check_invariants().unwrap();
}

#[test]
fn fgo_patches_live_plan_instead_of_rebuilding() {
    // With a live plan, FGO's batched edits must keep the plan alive (its
    // lists stay equal to a fresh traversal) and the engine must report the
    // patch path to the cost accounting.
    let mut h = Harness::new(20000, HeteroNode::system_a(10, 2), 64);
    h.engine.rebuild(&h.pos.clone(), 1024);
    h.measure();
    assert!(h.engine.has_live_plan(), "measure() must leave a live plan");
    let out = fine_grained_optimize(&mut h.engine, &h.model, &h.node, &cfg_for_tests());
    assert!(out.rounds > 0);
    assert!(h.engine.has_live_plan(), "FGO must not invalidate the plan");
    let patched = h.engine.counts();
    let fresh = {
        let lists = octree::dual_traversal(h.engine.tree(), h.engine.params().mac);
        octree::count_ops(h.engine.tree(), &lists)
    };
    assert_eq!(
        patched, fresh,
        "patched plan counts diverged from fresh traversal"
    );
}

#[test]
fn enforce_only_resets_best_after_enforce() {
    let mut h = Harness::new(2000, HeteroNode::system_a(4, 1), 64);
    let mut lb = LoadBalancer::new(Strategy::EnforceOnly, cfg_for_tests());
    // Drive through search.
    for _ in 0..25 {
        let (tc, tg) = h.measure();
        let pos = h.pos.clone();
        lb.post_step(&mut h.engine, &h.model, &h.node, &pos, tc, tg);
        if lb.state() == LbState::Observation {
            break;
        }
    }
    assert_eq!(lb.state(), LbState::Observation);
    let best = lb.best_compute();
    // Report a big regression: must enforce and arm the best reset.
    let pos = h.pos.clone();
    let rep = lb.post_step(&mut h.engine, &h.model, &h.node, &pos, best * 3.0, 0.0);
    assert!(rep.enforced);
    // Next step's compute becomes the new best, even though it is worse
    // than the old best.
    let new_compute = best * 1.5;
    lb.post_step(&mut h.engine, &h.model, &h.node, &pos, new_compute, 0.0);
    assert_eq!(lb.best_compute(), new_compute);
}

#[test]
fn observation_is_quiet_within_tolerance() {
    let mut h = Harness::new(2000, HeteroNode::system_a(4, 1), 64);
    let mut lb = LoadBalancer::new(Strategy::Full, cfg_for_tests());
    for _ in 0..30 {
        let (tc, tg) = h.measure();
        let pos = h.pos.clone();
        lb.post_step(&mut h.engine, &h.model, &h.node, &pos, tc, tg);
        if lb.state() == LbState::Observation {
            break;
        }
    }
    assert_eq!(lb.state(), LbState::Observation);
    let best = lb.best_compute();
    let pos = h.pos.clone();
    let rep = lb.post_step(&mut h.engine, &h.model, &h.node, &pos, best * 1.02, 0.0);
    assert_eq!(rep.lb_time, 0.0, "within 5%: no action");
    assert!(!rep.enforced && !rep.rebuilt);
}

#[test]
fn observation_enforce_takes_patch_path_with_live_plan() {
    let mut h = Harness::new(2000, HeteroNode::system_a(4, 1), 64);
    let mut lb = LoadBalancer::new(Strategy::EnforceOnly, cfg_for_tests());
    for _ in 0..30 {
        let (tc, tg) = h.measure();
        let pos = h.pos.clone();
        lb.post_step(&mut h.engine, &h.model, &h.node, &pos, tc, tg);
        if lb.state() == LbState::Observation {
            break;
        }
    }
    assert_eq!(lb.state(), LbState::Observation);
    // measure() refreshed the plan; a regression-triggered Enforce_S must
    // patch it rather than invalidate it.
    h.measure();
    assert!(h.engine.has_live_plan());
    let best = lb.best_compute();
    let pos = h.pos.clone();
    let rep = lb.post_step(&mut h.engine, &h.model, &h.node, &pos, best * 3.0, 0.0);
    assert!(rep.enforced);
    assert!(rep.patched, "live plan: enforce must take the patch path");
    assert!(h.engine.has_live_plan());
}

#[test]
fn incremental_probe_charges_patch_not_rebuild() {
    // Drive a Full balancer out of Search; the Incremental probes must ride
    // the live plan (rebin + enforce + patch) instead of full rebuilds.
    let mut h = Harness::new(6000, HeteroNode::system_a(10, 2), 64);
    let mut lb = LoadBalancer::new(Strategy::Full, cfg_for_tests());
    h.engine.rebuild(&h.pos.clone(), lb.s());
    for _ in 0..25 {
        let (tc, tg) = h.measure();
        let pos = h.pos.clone();
        lb.post_step(&mut h.engine, &h.model, &h.node, &pos, tc, tg);
        if lb.state() == LbState::Incremental {
            break;
        }
    }
    assert_eq!(lb.state(), LbState::Incremental);
    let (tc, tg) = h.measure();
    assert!(h.engine.has_live_plan());
    let pos = h.pos.clone();
    let rep = lb.post_step(&mut h.engine, &h.model, &h.node, &pos, tc, tg);
    if lb.state() == LbState::Incremental {
        assert!(!rep.rebuilt, "probe must not rebuild with a live plan");
        assert!(rep.patched, "probe must take the patch path");
        assert!(rep.enforced);
        assert!(rep.lb_time > 0.0);
        // The patched probe must be charged less than a rebuild would be.
        assert!(
            rep.lb_time < lbtime::rebuild(&h.node, pos.len()),
            "patch path charged {} >= rebuild {}",
            rep.lb_time,
            lbtime::rebuild(&h.node, pos.len())
        );
    }
}

#[test]
fn device_dropout_enters_recovery_then_settles() {
    let mut h = Harness::new(4000, HeteroNode::system_a(10, 2), 64);
    let mut lb = LoadBalancer::new(Strategy::Full, cfg_for_tests());
    h.engine.rebuild(&h.pos.clone(), lb.s());
    for _ in 0..40 {
        let (tc, tg) = h.measure();
        let pos = h.pos.clone();
        lb.post_step(&mut h.engine, &h.model, &h.node, &pos, tc, tg);
        if lb.state() == LbState::Observation {
            break;
        }
    }
    assert_eq!(lb.state(), LbState::Observation);
    // GPU 1 drops out.
    h.node
        .gpus
        .as_mut()
        .unwrap()
        .apply_event(&gpu_sim::FaultEvent::GpuDropout { device: 1 })
        .unwrap();
    let (tc, tg) = h.measure();
    let pos = h.pos.clone();
    lb.post_step(&mut h.engine, &h.model, &h.node, &pos, tc, tg);
    assert_eq!(
        lb.state(),
        LbState::Recovery,
        "dropout must trigger recovery"
    );
    // The warm bisection plus the bidirectional Incremental walk must
    // terminate back in Observation.
    for _ in 0..60 {
        let (tc, tg) = h.measure();
        let pos = h.pos.clone();
        lb.post_step(&mut h.engine, &h.model, &h.node, &pos, tc, tg);
        if lb.state() == LbState::Observation {
            break;
        }
    }
    assert_eq!(lb.state(), LbState::Observation);
}

#[test]
fn all_devices_lost_falls_back_to_cpu_only_plan() {
    let mut h = Harness::new(2000, HeteroNode::system_a(4, 1), 64);
    let mut lb = LoadBalancer::new(Strategy::Full, cfg_for_tests());
    h.engine.rebuild(&h.pos.clone(), lb.s());
    for _ in 0..40 {
        let (tc, tg) = h.measure();
        let pos = h.pos.clone();
        lb.post_step(&mut h.engine, &h.model, &h.node, &pos, tc, tg);
        if lb.state() == LbState::Observation {
            break;
        }
    }
    h.node
        .gpus
        .as_mut()
        .unwrap()
        .apply_event(&gpu_sim::FaultEvent::GpuDropout { device: 0 })
        .unwrap();
    let (tc, tg) = h.measure();
    assert_eq!(tg, 0.0, "no online devices: all work on the CPU");
    let pos = h.pos.clone();
    let rep = lb.post_step(&mut h.engine, &h.model, &h.node, &pos, tc, tg);
    assert!(rep.rebuilt, "CPU fallback re-plans the tree");
    assert!(rep.lb_time > 0.0, "the fallback sweep is not free");
    assert_eq!(lb.state(), LbState::Observation);
    // Further CPU-only steps run quietly.
    let (tc, tg) = h.measure();
    lb.post_step(&mut h.engine, &h.model, &h.node, &pos, tc, tg);
    assert_eq!(lb.state(), LbState::Observation);
}

#[test]
fn hysteresis_ignores_a_single_spike() {
    let mut h = Harness::new(2000, HeteroNode::system_a(4, 1), 64);
    let cfg = LbConfig {
        regression_hysteresis: 2,
        ..cfg_for_tests()
    };
    let mut lb = LoadBalancer::new(Strategy::Full, cfg);
    for _ in 0..40 {
        let (tc, tg) = h.measure();
        let pos = h.pos.clone();
        lb.post_step(&mut h.engine, &h.model, &h.node, &pos, tc, tg);
        if lb.state() == LbState::Observation {
            break;
        }
    }
    assert_eq!(lb.state(), LbState::Observation);
    let best = lb.best_compute();
    let pos = h.pos.clone();
    // One spiked step: tolerated.
    let rep = lb.post_step(&mut h.engine, &h.model, &h.node, &pos, best * 3.0, 0.0);
    assert!(
        !rep.enforced && rep.lb_time == 0.0,
        "first spike must be ignored"
    );
    // A second consecutive regression acts.
    let rep = lb.post_step(&mut h.engine, &h.model, &h.node, &pos, best * 3.0, 0.0);
    assert!(rep.enforced, "persistent regression must repair");
}

#[test]
fn cpu_only_s_sweep_finds_interior_optimum() {
    let mut h = Harness::new(3000, HeteroNode::serial(), 32);
    let cfg = LbConfig::default();
    let pos = h.pos.clone();
    let (s, t) = search_best_s_cpu_only(&mut h.engine, &h.node, &pos, &cfg);
    assert!(t > 0.0);
    assert!(
        s > cfg.s_min && s < cfg.s_max,
        "serial-optimal S should be interior, got {s}"
    );
    // Endpoint trees must be slower.
    let flops = h.engine.kernel.op_flops(h.engine.expansion_ops());
    for probe in [cfg.s_min, cfg.s_max] {
        h.engine.rebuild(&pos, probe);
        let tp = h.engine.time_step(&flops, &h.node).unwrap().compute();
        assert!(tp >= t, "S={probe} beat the sweep optimum");
    }
}
