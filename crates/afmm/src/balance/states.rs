//! Per-state step logic of the [`LoadBalancer`] plus the paper's
//! `FineGrainedOptimize` (§VI.B) and the CPU-only S sweep.
//!
//! Tree edits made here go through the engine's plan-aware APIs
//! ([`FmmEngine::enforce_s`], [`FmmEngine::apply_collapse`], ...) so a live
//! [`crate::ExecutionPlan`] is *patched* across them — and the `lbtime`
//! charges distinguish the cheap patch path from a full rebuild +
//! re-traversal honestly.

use super::{geometric_mid, lbtime, LbConfig, LbReport, LbState, LoadBalancer, Strategy};
use crate::config::HeteroNode;
use crate::cost::{CostModel, Prediction};
use crate::engine::FmmEngine;
use fmm_math::Kernel;
use octree::{NodeId, Octree, PlanRefresh};

impl LoadBalancer {
    /// React to a changed online-device count: with survivors, re-bisect S
    /// over a warm bracket around the settled value (the
    /// [`LbState::Recovery`] state, which runs the Search bisection); with
    /// none, fall back to the CPU-only plan — sweep S as the paper does for
    /// CPU-only runs and keep stepping on the cores alone.
    pub(super) fn enter_recovery<K: Kernel>(
        &mut self,
        engine: &mut FmmEngine<K>,
        node: &HeteroNode,
        pos: &[geom::Vec3],
        now_online: usize,
        rep: &mut LbReport,
    ) {
        self.regress_count = 0;
        self.incr_best = None;
        self.incr_dir_up = None;
        self.incr_flipped = false;
        self.best_compute = f64::INFINITY;
        self.reset_best_next = true;
        self.recorder().event(
            "lb.recovery",
            vec![
                ("online", telemetry::Value::U64(now_online as u64)),
                ("s", telemetry::Value::U64(self.s() as u64)),
            ],
        );
        if now_online == 0 {
            // Graceful CPU-only fallback. The sweep rebuilds the tree once
            // per probe; charge each rebuild as LB time.
            let (s, _t) = search_best_s_cpu_only(engine, node, pos, &self.cfg);
            self.s = s;
            let mut probes = 0usize;
            let mut sp = self.cfg.s_min;
            while sp <= self.cfg.s_max {
                probes += 1;
                sp = ((sp as f64 * 1.6).ceil() as usize).max(sp + 1);
            }
            rep.lb_time += probes as f64 * lbtime::rebuild(node, pos.len());
            rep.rebuilt = true;
            self.transition(LbState::Observation, "all_gpus_offline");
            return;
        }
        // Survivors remain: warm-start the bisection on a bracket spanning
        // both sides of the settled S (the crossover may move either way
        // depending on which resource the lost/gained device relieves).
        self.lo = (self.s / 8).max(self.cfg.s_min);
        self.hi = self
            .s
            .saturating_mul(8)
            .min(self.cfg.s_max)
            .max(self.lo + 1);
        self.transition(LbState::Recovery, "device_count_changed");
    }

    fn leave_search(&mut self, compute: f64) {
        self.best_compute = compute;
        let to = match self.strategy {
            Strategy::StaticS => LbState::Frozen,
            Strategy::EnforceOnly => LbState::Observation,
            // Recovery exits the same way a cold search does: the bisection
            // only localizes the crossover, and the compute-guided walk is
            // what finds the surviving hardware's actual optimum.
            Strategy::Full => LbState::Incremental,
        };
        self.transition(to, "search_settled");
        self.incr_best = None;
        self.incr_dir_up = None;
        self.incr_flipped = false;
        self.regress_count = 0;
    }

    pub(super) fn search_step<K: Kernel>(
        &mut self,
        engine: &mut FmmEngine<K>,
        node: &HeteroNode,
        pos: &[geom::Vec3],
        t_cpu: f64,
        t_gpu: f64,
        rep: &mut LbReport,
    ) {
        let compute = t_cpu.max(t_gpu);
        let diff = (t_cpu - t_gpu).abs();
        let bracket_done = self.hi <= self.lo + self.lo / 4;
        // A node with no (online) GPUs has nothing to balance *between*: any
        // S trades CPU work against CPU work, so the state machine defers to
        // an external S sweep (see `search_best_s_cpu_only`) and freezes.
        if node.num_online_gpus() == 0 || diff <= self.cfg.eps_switch_s || bracket_done {
            self.leave_search(compute);
            return;
        }
        if t_cpu > t_gpu {
            // CPU dominates: shift work toward the GPU with a larger S.
            self.lo = self.s;
        } else {
            self.hi = self.s;
        }
        let mid = geometric_mid(self.lo, self.hi);
        if mid == self.s {
            self.leave_search(compute);
            return;
        }
        self.s = mid;
        // Search probes jump S far enough that structure changes wholesale;
        // the honest cost is a full rebuild.
        engine.rebuild(pos, self.s);
        rep.lb_time += lbtime::rebuild(node, pos.len());
        rep.rebuilt = true;
    }

    /// The Incremental walk, steered by the *measured compute time* rather
    /// than by which side dominates. Dominance only seeds the initial
    /// direction; after that each 1.15× probe keeps walking while compute
    /// stays within `incr_tol` of the walk's best (riding over local
    /// bumps from block quantization). When a direction is exhausted —
    /// compute climbs out of the tolerance band or S pins at a bound —
    /// the walk reverses once from its best S so both sides of the start
    /// are explored, then settles at the walk's best.
    #[allow(clippy::too_many_arguments)]
    pub(super) fn incremental_step<K: Kernel>(
        &mut self,
        engine: &mut FmmEngine<K>,
        model: &CostModel,
        node: &HeteroNode,
        pos: &[geom::Vec3],
        t_cpu: f64,
        t_gpu: f64,
        rep: &mut LbReport,
    ) {
        let compute = t_cpu.max(t_gpu);
        if self.incr_dir_up.is_none() {
            // CPU dominant: shift near-field work to the GPUs with larger S.
            self.incr_dir_up = Some(t_cpu >= t_gpu);
        }
        let mut exhausted = false;
        match self.incr_best {
            None => self.incr_best = Some((self.s, compute)),
            Some((_, c_best)) if compute < c_best => {
                self.incr_best = Some((self.s, compute));
            }
            Some((_, c_best)) if compute > c_best * (1.0 + self.cfg.incr_tol) => {
                // Walked off the basin in this direction.
                exhausted = true;
            }
            // Within the tolerance band of the best: keep walking through
            // the local bump.
            Some(_) => {}
        }
        let f = self.cfg.incr_factor;
        let step_from = |s: usize, up: bool| {
            if up {
                ((s as f64 * f).ceil() as usize).min(self.cfg.s_max)
            } else {
                ((s as f64 / f).floor() as usize).max(self.cfg.s_min)
            }
        };
        let mut next = step_from(self.s, self.incr_dir_up == Some(true));
        if next == self.s {
            // Pinned at a bound: this direction is exhausted too.
            exhausted = true;
        }
        if exhausted {
            if self.incr_flipped {
                // Both directions explored: settle at the walk's best.
                self.finish_incremental(engine, model, node, pos, rep);
                return;
            }
            // Reverse once, restarting the probes from the walk's best S.
            self.incr_flipped = true;
            self.incr_dir_up = self.incr_dir_up.map(|d| !d);
            let base = self.incr_best.map_or(self.s, |(s, _)| s);
            next = step_from(base, self.incr_dir_up == Some(true));
            if next == base || next == self.s {
                self.finish_incremental(engine, model, node, pos, rep);
                return;
            }
        }
        self.s = next;
        // An Incremental probe only perturbs the S-neighborhood: with a live
        // plan, re-bin the moved bodies and Enforce_S the new capacity via
        // plan patches — paying rebin + enforce + patch cost, not a full
        // rebuild + re-traversal.
        if engine.has_live_plan() {
            engine.rebin(pos);
            rep.lb_time += lbtime::rebin(node, pos.len());
            if engine.refresh_plan() == PlanRefresh::Rebuilt {
                // Motion flipped cells between empty and non-empty; the plan
                // had to re-traverse after all.
                rep.lb_time += lbtime::predict(node, list_entries(engine));
            }
            engine.set_s(next);
            let nodes_before = engine.tree().visible_nodes().len();
            let (outcome, patched) = engine.enforce_s();
            self.record_enforce(&outcome, patched);
            let edits = outcome.collapses + outcome.pushdowns;
            rep.lb_time += lbtime::enforce(node, nodes_before, edits);
            if patched {
                rep.lb_time += lbtime::plan_patch(node, edits);
                rep.patched = true;
            }
            rep.enforced = true;
        } else {
            engine.rebuild(pos, self.s);
            rep.lb_time += lbtime::rebuild(node, pos.len());
            rep.rebuilt = true;
        }
    }

    /// Exit Incremental → Observation: restore the walk's best S if the
    /// walk drifted past it, then — if CPU and GPU times still differ
    /// materially — bridge the residual gap locally with FGO. The walk's
    /// best measured compute becomes Observation's regression baseline, so
    /// the baseline is in the same (possibly disturbed) units as the
    /// measurements Observation will compare against it.
    fn finish_incremental<K: Kernel>(
        &mut self,
        engine: &mut FmmEngine<K>,
        model: &CostModel,
        node: &HeteroNode,
        pos: &[geom::Vec3],
        rep: &mut LbReport,
    ) {
        if let Some((s_best, c_best)) = self.incr_best {
            if self.s != s_best {
                // Settling is worth a clean tree: rebuild at the walk's best
                // S rather than patching backwards through the probes.
                self.s = s_best;
                engine.rebuild(pos, self.s);
                engine.refresh_lists();
                rep.lb_time += lbtime::rebuild(node, pos.len());
                rep.rebuilt = true;
            }
            self.best_compute = c_best;
        }
        if self.cfg.use_fgo && self.strategy == Strategy::Full {
            // Gate and verify FGO on the undisturbed virtual timing so the
            // before/after comparison is apples-to-apples even when the
            // balancer's fed measurements carry noise or external load.
            let flops = engine.kernel.op_flops(engine.expansion_ops());
            let before = engine.time_step(&flops, node).ok();
            rep.lb_time += lbtime::predict(node, list_entries(engine));
            if let Some(before) = before {
                if (before.t_cpu - before.t_gpu).abs() > self.cfg.eps_switch_s {
                    let out = fine_grained_optimize(engine, model, node, &self.cfg);
                    rep.lb_time += out.lb_time;
                    rep.fgo_rounds = out.rounds;
                    if out.rounds > 0 {
                        // The model's predicted win can be spurious away
                        // from the uniform-gap boundary; roll the edits
                        // back if they don't realize.
                        let realized = engine.time_step(&flops, node).ok().map(|t| t.compute());
                        rep.lb_time += lbtime::predict(node, list_entries(engine));
                        if matches!(realized, Some(r) if r > before.compute()) {
                            self.recorder().event(
                                "lb.fgo_rollback",
                                vec![
                                    ("before", telemetry::Value::F64(before.compute())),
                                    (
                                        "realized",
                                        telemetry::Value::F64(realized.unwrap_or(f64::NAN)),
                                    ),
                                    ("rounds", telemetry::Value::U64(out.rounds as u64)),
                                ],
                            );
                            engine.rebuild(pos, self.s);
                            engine.refresh_lists();
                            rep.lb_time += lbtime::rebuild(node, pos.len());
                            rep.rebuilt = true;
                        }
                    }
                }
            }
        }
        self.incr_best = None;
        self.incr_dir_up = None;
        self.incr_flipped = false;
        self.transition(LbState::Observation, "incremental_settled");
    }

    pub(super) fn observation_step<K: Kernel>(
        &mut self,
        engine: &mut FmmEngine<K>,
        model: &CostModel,
        node: &HeteroNode,
        compute: f64,
        rep: &mut LbReport,
    ) {
        let limit = self.best_compute * (1.0 + self.cfg.regression_frac);
        if compute <= limit {
            self.regress_count = 0;
            self.best_compute = self.best_compute.min(compute);
            return;
        }
        // Hysteresis: demand the regression persist before paying for a
        // repair — a single spiked measurement (OS jitter, transient load)
        // must not cost an Enforce_S pass.
        self.regress_count += 1;
        if self.regress_count < self.cfg.regression_hysteresis {
            return;
        }
        self.regress_count = 0;
        // The provenance event the replay validator pairs with the enforce
        // that follows: every Observation-state Enforce_S must be preceded
        // by a regression (or anomaly) signal in the same step.
        self.recorder().event(
            "lb.regression",
            vec![
                ("compute", telemetry::Value::F64(compute)),
                ("limit", telemetry::Value::F64(limit)),
                ("best", telemetry::Value::F64(self.best_compute)),
            ],
        );
        // Regression: first line of defense is Enforce_S — through the plan
        // when one is live, so the interaction lists survive the repair.
        let nodes_before = engine.tree().visible_nodes().len();
        let (outcome, patched) = engine.enforce_s();
        self.record_enforce(&outcome, patched);
        let edits = outcome.collapses + outcome.pushdowns;
        rep.lb_time += lbtime::enforce(node, nodes_before, edits);
        if patched {
            rep.lb_time += lbtime::plan_patch(node, edits);
            rep.patched = true;
        }
        rep.enforced = true;
        match self.strategy {
            Strategy::StaticS => unreachable!("StaticS freezes after Search"),
            Strategy::EnforceOnly => {
                self.reset_best_next = true;
            }
            Strategy::Full => {
                let counts = engine.refresh_lists();
                if !patched {
                    // The enforce invalidated the plan; the refresh above
                    // paid for a fresh traversal + recount.
                    rep.lb_time += lbtime::predict(node, list_entries(engine));
                }
                let mut pred = model.predict(&counts, node);
                if pred.compute() > limit && self.cfg.use_fgo {
                    let out = fine_grained_optimize(engine, model, node, &self.cfg);
                    rep.lb_time += out.lb_time;
                    rep.fgo_rounds = out.rounds;
                    pred = out.prediction;
                }
                if pred.compute() > limit {
                    // Local repair failed: re-run the global adjustment.
                    self.transition(LbState::Incremental, "repair_failed");
                    self.incr_best = None;
                    self.incr_dir_up = None;
                    self.incr_flipped = false;
                }
            }
        }
    }
}

/// M2L + P2P interaction-list entries of the engine's current lists (the
/// size driver of a prediction pass).
fn list_entries<K: Kernel>(engine: &FmmEngine<K>) -> usize {
    engine.lists().num_m2l() + engine.lists().num_p2p_pairs()
}

/// Result of one [`fine_grained_optimize`] invocation.
#[derive(Clone, Copy, Debug)]
pub struct FgoOutcome {
    pub lb_time: f64,
    pub rounds: usize,
    /// Predicted times of the tree as left behind.
    pub prediction: Prediction,
}

/// Visible internal non-root nodes whose visible children are all leaves
/// ("twigs"), cheapest first — collapsing one of these trades its children's
/// M2L/L2L work for a bounded P2P increase, and is exactly invertible by
/// PushDown.
fn collapse_candidates(tree: &Octree, k: usize) -> Vec<NodeId> {
    let mut cand: Vec<NodeId> = tree
        .visible_nodes()
        .into_iter()
        .filter(|&id| {
            id != Octree::ROOT
                && !tree.node(id).is_leaf()
                && tree.node(id).count() > 0
                && tree.visible_children(id).all(|c| tree.node(c).is_leaf())
        })
        .collect();
    cand.sort_by_key(|&id| (tree.node(id).count(), id));
    cand.truncate(k);
    cand
}

/// Active leaves heavy enough to be worth splitting, heaviest first.
fn pushdown_candidates(tree: &Octree, k: usize) -> Vec<NodeId> {
    let mut cand: Vec<NodeId> = tree
        .active_leaves()
        .into_iter()
        .filter(|&id| tree.node(id).count() >= 8)
        .collect();
    cand.sort_by_key(|&id| (std::cmp::Reverse(tree.node(id).count()), id));
    cand.truncate(k);
    cand
}

/// The paper's **FineGrainedOptimize** (§VI.B): make batched local Collapse
/// (CPU too slow) or PushDown (GPU too slow) modifications, re-predicting
/// the step time after each batch via the cost model, and keep going while
/// the predicted compute time falls. The last (non-improving) batch is
/// reverted.
///
/// Edits go through the engine's plan-aware operations: with a live plan,
/// each batch is charged modify + patch cost, and the recount after it is a
/// plan lookup rather than a fresh traversal.
pub fn fine_grained_optimize<K: Kernel>(
    engine: &mut FmmEngine<K>,
    model: &CostModel,
    node: &HeteroNode,
    cfg: &LbConfig,
) -> FgoOutcome {
    let rec = engine.recorder().clone();
    let mut lb_time = 0.0;
    let mut counts = engine.refresh_lists();
    lb_time += lbtime::predict(node, list_entries(engine));
    let mut best = model.predict(&counts, node);
    let mut rounds = 0usize;

    while rounds < cfg.fgo_max_rounds {
        let tree = engine.tree();
        // P2P pairs only convert to M2L when *both* cells of a pair are
        // refined, so pushdown batches must be large enough to split
        // spatially neighbouring cells together (heaviest leaves cluster);
        // a batch of one almost never improves and would stall the loop.
        let batch_size =
            ((tree.active_leaves().len() as f64 * cfg.fgo_batch_frac).ceil() as usize).max(8);
        let collapsing = best.cpu_dominant();
        let batch = if collapsing {
            collapse_candidates(tree, batch_size)
        } else {
            pushdown_candidates(tree, batch_size)
        };
        if batch.is_empty() {
            break;
        }
        let applied = apply_batch(engine, &batch, collapsing);
        if applied.is_empty() {
            break;
        }
        lb_time += lbtime::modify(node, applied.len());
        let patched = engine.has_live_plan();
        counts = engine.refresh_lists();
        lb_time += if patched {
            lbtime::plan_patch(node, applied.len())
        } else {
            lbtime::predict(node, list_entries(engine))
        };
        let pred = model.predict(&counts, node);
        rounds += 1;
        rec.event(
            "lb.fgo_batch",
            vec![
                ("round", telemetry::Value::U64(rounds as u64)),
                ("collapsing", telemetry::Value::Bool(collapsing)),
                ("applied", telemetry::Value::U64(applied.len() as u64)),
                ("pred_before", telemetry::Value::F64(best.compute())),
                ("pred_after", telemetry::Value::F64(pred.compute())),
                (
                    "accepted",
                    telemetry::Value::Bool(pred.compute() < best.compute()),
                ),
            ],
        );
        if pred.compute() < best.compute() {
            best = pred;
        } else {
            // Revert the non-improving batch and stop.
            let reverted = apply_batch(engine, &applied, !collapsing);
            lb_time += lbtime::modify(node, reverted.len());
            let patched = engine.has_live_plan();
            engine.refresh_lists();
            lb_time += if patched {
                lbtime::plan_patch(node, reverted.len())
            } else {
                lbtime::predict(node, list_entries(engine))
            };
            break;
        }
    }
    FgoOutcome {
        lb_time,
        rounds,
        prediction: best,
    }
}

/// Apply Collapse (`collapsing`) or PushDown to every node in `batch`
/// through the engine's plan-aware operations; returns the ids where the
/// operation actually applied.
fn apply_batch<K: Kernel>(
    engine: &mut FmmEngine<K>,
    batch: &[NodeId],
    collapsing: bool,
) -> Vec<NodeId> {
    batch
        .iter()
        .copied()
        .filter(|&id| {
            if collapsing {
                engine.apply_collapse(id)
            } else {
                engine.apply_push_down(id)
            }
        })
        .collect()
}

/// Sweep S on a geometric grid and return the value minimizing the virtual
/// compute time — how the paper picks S for CPU-only runs ("the S that
/// minimized the time for this single core case") and how every strategy's
/// initial S is validated in the benches.
pub fn search_best_s_cpu_only<K: Kernel>(
    engine: &mut FmmEngine<K>,
    node: &HeteroNode,
    pos: &[geom::Vec3],
    cfg: &LbConfig,
) -> (usize, f64) {
    let flops = engine.kernel.op_flops(engine.expansion_ops());
    let mut best = (cfg.s_min, f64::INFINITY);
    let mut s = cfg.s_min;
    while s <= cfg.s_max {
        engine.rebuild(pos, s);
        // With zero online GPUs the near field folds into the CPU DAG, so
        // this timing never takes a fallible GPU path.
        let t = engine
            .time_step(&flops, node)
            .expect("CPU-side timing cannot fail")
            .compute();
        if t < best.1 {
            best = (s, t);
        }
        s = ((s as f64 * 1.6).ceil() as usize).max(s + 1);
    }
    engine.rebuild(pos, best.0);
    engine.refresh_lists();
    best
}
