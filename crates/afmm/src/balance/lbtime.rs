//! Modeled wall times of the tree-maintenance / load-balancing operations,
//! charged to the paper's "LB time" accounting (Table II). The constants are
//! flop-equivalents per unit of structural work; maintenance is
//! memory-bound, so it runs at a derated fraction of the cores' rate.

use crate::config::HeteroNode;

/// Fraction of peak flop rate achieved by pointer-chasing tree work.
const MAINTENANCE_EFFICIENCY: f64 = 0.5;
/// Work per body per tree level for a full rebuild (Morton keys +
/// parallel sort + node allocation).
const REBUILD_PER_BODY_LEVEL: f64 = 40.0;
/// Work per body for the per-step re-bin pass. With contiguous subtree
/// ranges this is a streaming membership check + local fix-up (bodies
/// rarely change leaves within one small time step), not a full
/// re-sort — matching the paper's near-zero strategy-1 LB overhead
/// (0.02% of compute over 2000 steps).
const REBIN_PER_BODY: f64 = 8.0;
/// Work per visible node for an Enforce_S sweep.
const ENFORCE_PER_NODE: f64 = 60.0;
/// Work per Collapse/PushDown application (flag writes, range
/// repartition).
const MODIFY_PER_OP: f64 = 3.0e3;
/// Work per interaction-list entry for a prediction pass (dual
/// traversal + op recount).
const PREDICT_PER_ENTRY: f64 = 90.0;
/// Work per edit for patching a live execution plan through a
/// collapse/push-down: inverse-list removals plus the restricted
/// re-traversal around the edited node. Independent of tree size — that is
/// the entire point of the plan layer.
const PLAN_PATCH_PER_EDIT: f64 = 2.0e3;

fn rate(node: &HeteroNode) -> f64 {
    let c = &node.cpu;
    c.cores as f64 * c.rate_flops * c.memory.rate_factor(c.cores) * MAINTENANCE_EFFICIENCY
}

fn levels(n_bodies: usize) -> f64 {
    (n_bodies.max(2) as f64).log2()
}

/// Wall time of a full tree rebuild over `n_bodies`.
pub fn rebuild(node: &HeteroNode, n_bodies: usize) -> f64 {
    REBUILD_PER_BODY_LEVEL * n_bodies as f64 * levels(n_bodies) / rate(node)
}

/// Wall time of re-binning `n_bodies` into the unchanged structure.
pub fn rebin(node: &HeteroNode, n_bodies: usize) -> f64 {
    REBIN_PER_BODY * n_bodies as f64 / rate(node)
}

/// Wall time of one Enforce_S sweep that visited `nodes` and applied
/// `changes` collapse/pushdown operations.
pub fn enforce(node: &HeteroNode, nodes: usize, changes: usize) -> f64 {
    (ENFORCE_PER_NODE * nodes as f64 + MODIFY_PER_OP * changes as f64) / rate(node)
}

/// Wall time of applying `changes` collapse/pushdown operations.
pub fn modify(node: &HeteroNode, changes: usize) -> f64 {
    MODIFY_PER_OP * changes as f64 / rate(node)
}

/// Wall time of one time-prediction pass over a tree whose interaction
/// lists hold `entries` M2L + P2P entries.
pub fn predict(node: &HeteroNode, entries: usize) -> f64 {
    PREDICT_PER_ENTRY * entries as f64 / rate(node)
}

/// Wall time of patching a live execution plan through `edits`
/// collapse/push-down operations (instead of re-deriving lists and counts
/// from scratch — compare [`predict`] for the full pass this replaces).
pub fn plan_patch(node: &HeteroNode, edits: usize) -> f64 {
    PLAN_PATCH_PER_EDIT * edits as f64 / rate(node)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lbtime_scales_sanely() {
        let node = HeteroNode::system_a(10, 2);
        let r1 = rebuild(&node, 10_000);
        let r2 = rebuild(&node, 100_000);
        assert!(r2 > 5.0 * r1, "rebuild super-linear in n: {r1} vs {r2}");
        assert!(rebin(&node, 10_000) < r1, "rebin cheaper than rebuild");
        let serial = HeteroNode::serial();
        assert!(
            rebuild(&serial, 10_000) > r1,
            "fewer cores, slower maintenance"
        );
        assert!(enforce(&node, 1000, 10) > 0.0);
        assert!(predict(&node, 50_000) > 0.0);
        assert_eq!(modify(&node, 0), 0.0);
    }

    #[test]
    fn plan_patch_is_cheap_and_size_independent() {
        let node = HeteroNode::system_a(10, 2);
        assert_eq!(plan_patch(&node, 0), 0.0);
        let one = plan_patch(&node, 1);
        assert!(one > 0.0);
        // A handful of patched edits must undercut the full re-traversal
        // of even a modest list set — the economics the balancer relies on.
        assert!(plan_patch(&node, 10) < predict(&node, 10_000));
        // And undercut a rebuild at any realistic N.
        assert!(plan_patch(&node, 10) < rebuild(&node, 10_000));
    }
}
