use std::fmt;

/// Structured failures of the AFMM timing/balancing layer. The physics
/// solve itself is deterministic host arithmetic and cannot fail; errors
/// arise from the *virtual node* — devices dropping out mid-run, invalid
/// fault parameters, or disturbed measurements going non-finite — and from
/// caller mistakes previously reported by `assert!`.
#[derive(Clone, Debug, PartialEq)]
pub enum Error {
    /// The simulated GPU system refused the work (see [`gpu_sim::Error`]).
    Gpu(gpu_sim::Error),
    /// A kernel launch produced a timing covering no devices.
    MissingGpuTiming,
    /// A measured (possibly noise-disturbed) step time was NaN or infinite.
    NonFiniteTiming { t_cpu: f64, t_gpu: f64 },
    /// `solve` was called with a different body count than the tree holds.
    BodyCountChanged { expected: usize, got: usize },
    /// `solve` was called with a strength slice of the wrong length.
    StrengthLengthMismatch { expected: usize, got: usize },
    /// An integrity audit found corrupted engine state. `what` names the
    /// audited structure (`"tree"`, `"plan"`, `"bodies"`, `"epoch"`);
    /// `detail` is the violated invariant.
    AuditFailed { what: &'static str, detail: String },
    /// A checkpoint could not be parsed, failed its checksum, carried an
    /// unsupported schema version, or disagreed with the restore target.
    Checkpoint(String),
    /// The supervisor's last escalation rung needs a checkpoint but none has
    /// been taken.
    NoCheckpoint,
    /// A step panicked and was contained by the supervisor.
    StepPanicked,
    /// The supervisor exhausted every escalation rung without producing a
    /// healthy step; the boxed error is the last rung's failure.
    Unrecoverable(Box<Error>),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Gpu(e) => write!(f, "GPU system error: {e}"),
            Error::MissingGpuTiming => {
                write!(f, "kernel launch reported timing for no devices")
            }
            Error::NonFiniteTiming { t_cpu, t_gpu } => {
                write!(f, "non-finite step timing (cpu {t_cpu}, gpu {t_gpu})")
            }
            Error::BodyCountChanged { expected, got } => {
                write!(
                    f,
                    "body count changed without rebuild: tree has {expected}, got {got}"
                )
            }
            Error::StrengthLengthMismatch { expected, got } => {
                write!(f, "strength slice has {got} values, solve needs {expected}")
            }
            Error::AuditFailed { what, detail } => {
                write!(f, "integrity audit of {what} failed: {detail}")
            }
            Error::Checkpoint(detail) => write!(f, "checkpoint error: {detail}"),
            Error::NoCheckpoint => {
                write!(f, "restore requested but no checkpoint has been taken")
            }
            Error::StepPanicked => write!(f, "step panicked (contained by supervisor)"),
            Error::Unrecoverable(e) => {
                write!(f, "supervisor exhausted every escalation rung: {e}")
            }
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Gpu(e) => Some(e),
            _ => None,
        }
    }
}

impl From<gpu_sim::Error> for Error {
    fn from(e: gpu_sim::Error) -> Self {
        Error::Gpu(e)
    }
}
