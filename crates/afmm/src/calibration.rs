//! Persistent cost-model calibration store.
//!
//! The balancer's [`CostModel`](crate::CostModel) starts every run cold and
//! re-learns its per-operation coefficients from the first observed solves
//! (paper §IV.D). Those coefficients are a property of the *machine and
//! workload shape*, not of the run — a 16-core host solving N≈10⁶ Plummer
//! bodies at S=96 prices an M2L the same way tomorrow as today. This module
//! aggregates realized coefficients across runs into per-cell running means
//! keyed by [`CalibrationKey`] — host fingerprint, ⌊log₂N⌋ bucket, device
//! mix, and S — and persists them as flat JSONL.
//!
//! This PR the store is a read-only observatory fed by `afmm-perf record`:
//! it answers "what does this machine's cost table converge to?" and how
//! far the model's predictions land from observed step times
//! ([`telemetry::AuditStats`]). The intended consumer is the warm-start
//! balancer (ROADMAP item 3): seed a fresh `CostModel` from the matching
//! cell instead of the hand-tuned defaults, and skip most of the
//! observation settle.
//!
//! Persistence is one flat JSON object per line, read back through
//! [`telemetry::parse_flat_json`], so unknown fields written by newer
//! binaries are ignored instead of rejected.

use crate::cost::CostModel;
use std::fmt::Write as _;
use std::path::Path;
use telemetry::{flat_f64, flat_str, flat_u64, push_json_f64, push_json_str, AuditStats};

/// Which cell of the calibration table an observation lands in.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct CalibrationKey {
    /// Host fingerprint, e.g. `"linux-x86_64-16c"`.
    pub host: String,
    /// ⌊log₂ N⌋ of the body count — coefficient scale is stable within a
    /// 2× size band, and bucketing keeps the table small.
    pub n_bucket: u32,
    /// Device mix label, e.g. `"10c4g"` (cores + GPUs).
    pub mix: String,
    /// Max bodies per leaf the tree was built with.
    pub s: u64,
}

impl CalibrationKey {
    pub fn new(host: &str, n: usize, cores: usize, gpus: usize, s: u64) -> Self {
        CalibrationKey {
            host: host.to_string(),
            n_bucket: n_bucket(n),
            mix: mix_label(cores, gpus),
            s,
        }
    }
}

/// ⌊log₂ N⌋ (0 for N ≤ 1).
pub fn n_bucket(n: usize) -> u32 {
    if n <= 1 {
        0
    } else {
        n.ilog2()
    }
}

/// `"<cores>c<gpus>g"`.
pub fn mix_label(cores: usize, gpus: usize) -> String {
    format!("{cores}c{gpus}g")
}

/// One cell: count-weighted running means of every coefficient plus the
/// aggregated prediction-audit error for the runs that fed it.
#[derive(Clone, Debug)]
pub struct CalibrationCell {
    pub key: CalibrationKey,
    /// Observations merged into this cell.
    pub runs: u64,
    /// Running-mean coefficient table (`is_observed()` is true).
    pub model: CostModel,
    /// Audited predictions across all merged runs.
    pub audit_count: u64,
    /// Count-weighted mean relative prediction error.
    pub audit_mean: f64,
    /// Worst p90 relative error any merged run reported.
    pub audit_p90: f64,
}

/// The nine coefficient fields, in serialization order.
const COEFFS: [&str; 9] = [
    "c_p2m",
    "c_m2m",
    "c_m2l",
    "c_l2l",
    "c_l2p",
    "c_cpu_pair",
    "c_node",
    "c_gpu_pair",
    "parallel_rate",
];

fn coeff(model: &CostModel, name: &str) -> f64 {
    match name {
        "c_p2m" => model.c_p2m,
        "c_m2m" => model.c_m2m,
        "c_m2l" => model.c_m2l,
        "c_l2l" => model.c_l2l,
        "c_l2p" => model.c_l2p,
        "c_cpu_pair" => model.c_cpu_pair,
        "c_node" => model.c_node,
        "c_gpu_pair" => model.c_gpu_pair,
        "parallel_rate" => model.parallel_rate,
        _ => unreachable!("unknown coefficient {name}"),
    }
}

fn coeff_mut<'a>(model: &'a mut CostModel, name: &str) -> &'a mut f64 {
    match name {
        "c_p2m" => &mut model.c_p2m,
        "c_m2m" => &mut model.c_m2m,
        "c_m2l" => &mut model.c_m2l,
        "c_l2l" => &mut model.c_l2l,
        "c_l2p" => &mut model.c_l2p,
        "c_cpu_pair" => &mut model.c_cpu_pair,
        "c_node" => &mut model.c_node,
        "c_gpu_pair" => &mut model.c_gpu_pair,
        "parallel_rate" => &mut model.parallel_rate,
        _ => unreachable!("unknown coefficient {name}"),
    }
}

impl CalibrationCell {
    fn to_json_line(&self) -> String {
        let mut out = String::with_capacity(256);
        out.push_str("{\"host\":");
        push_json_str(&mut out, &self.key.host);
        let _ = write!(out, ",\"n_bucket\":{}", self.key.n_bucket);
        out.push_str(",\"mix\":");
        push_json_str(&mut out, &self.key.mix);
        let _ = write!(out, ",\"s\":{},\"runs\":{}", self.key.s, self.runs);
        for name in COEFFS {
            out.push_str(",\"");
            out.push_str(name);
            out.push_str("\":");
            push_json_f64(&mut out, coeff(&self.model, name));
        }
        let _ = write!(out, ",\"audit_count\":{}", self.audit_count);
        out.push_str(",\"audit_mean\":");
        push_json_f64(&mut out, self.audit_mean);
        out.push_str(",\"audit_p90\":");
        push_json_f64(&mut out, self.audit_p90);
        out.push('}');
        out
    }

    fn from_json_line(line: &str) -> Result<Self, String> {
        let fields = telemetry::parse_flat_json(line)?;
        let host = flat_str(&fields, "host")
            .ok_or("calibration cell missing \"host\"")?
            .to_string();
        let mix = flat_str(&fields, "mix")
            .ok_or("calibration cell missing \"mix\"")?
            .to_string();
        let n_bucket =
            flat_u64(&fields, "n_bucket").ok_or("calibration cell missing \"n_bucket\"")? as u32;
        let s = flat_u64(&fields, "s").ok_or("calibration cell missing \"s\"")?;
        let mut model = CostModel::new();
        for name in COEFFS {
            if let Some(v) = flat_f64(&fields, name) {
                *coeff_mut(&mut model, name) = v;
            }
        }
        model.set_observed(true);
        Ok(CalibrationCell {
            key: CalibrationKey {
                host,
                n_bucket,
                mix,
                s,
            },
            runs: flat_u64(&fields, "runs").unwrap_or(1).max(1),
            model,
            audit_count: flat_u64(&fields, "audit_count").unwrap_or(0),
            audit_mean: flat_f64(&fields, "audit_mean").unwrap_or(0.0),
            audit_p90: flat_f64(&fields, "audit_p90").unwrap_or(0.0),
        })
    }
}

/// The whole table, cell per `(host, n_bucket, mix, s)`.
#[derive(Clone, Debug, Default)]
pub struct CalibrationStore {
    cells: Vec<CalibrationCell>,
}

impl CalibrationStore {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn len(&self) -> usize {
        self.cells.len()
    }

    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    pub fn cells(&self) -> &[CalibrationCell] {
        &self.cells
    }

    pub fn get(&self, key: &CalibrationKey) -> Option<&CalibrationCell> {
        self.cells.iter().find(|c| &c.key == key)
    }

    /// Merge one run's realized coefficients (and optionally its
    /// prediction-audit summary) into the matching cell, creating it on
    /// first sight. Coefficients merge as count-weighted running means so
    /// cell order and run order don't change the converged table;
    /// `audit_p90` keeps the worst run seen (a calibration consumer cares
    /// about the error *bound*, not its average shape).
    pub fn observe(&mut self, key: CalibrationKey, model: &CostModel, audit: Option<&AuditStats>) {
        let cell = match self.cells.iter_mut().find(|c| c.key == key) {
            Some(c) => c,
            None => {
                let mut fresh = CostModel::new();
                for name in COEFFS {
                    *coeff_mut(&mut fresh, name) = 0.0;
                }
                fresh.set_observed(true);
                self.cells.push(CalibrationCell {
                    key,
                    runs: 0,
                    model: fresh,
                    audit_count: 0,
                    audit_mean: 0.0,
                    audit_p90: 0.0,
                });
                self.cells.last_mut().expect("just pushed")
            }
        };
        let w_old = cell.runs as f64;
        let w_new = w_old + 1.0;
        for name in COEFFS {
            let c = coeff_mut(&mut cell.model, name);
            *c = (*c * w_old + coeff(model, name)) / w_new;
        }
        cell.runs += 1;
        if let Some(a) = audit {
            let n_old = cell.audit_count as f64;
            let n_new = a.count as f64;
            if n_old + n_new > 0.0 {
                cell.audit_mean = (cell.audit_mean * n_old + a.mean * n_new) / (n_old + n_new);
            }
            cell.audit_count += a.count as u64;
            cell.audit_p90 = cell.audit_p90.max(a.p90);
        }
    }

    /// Write the table, one cell per line. Rewrites the whole file: cells
    /// are aggregates, not a log, so unlike the perf ledger there is
    /// nothing append-only about them.
    pub fn save(&self, path: &Path) -> Result<(), String> {
        if let Some(dir) = path.parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir)
                    .map_err(|e| format!("creating {}: {e}", dir.display()))?;
            }
        }
        let mut text = String::new();
        for cell in &self.cells {
            text.push_str(&cell.to_json_line());
            text.push('\n');
        }
        std::fs::write(path, text).map_err(|e| format!("writing {}: {e}", path.display()))
    }

    /// Read a table. Missing file → empty store; corrupt lines are skipped
    /// with a warning each (forward compatibility: newer binaries may add
    /// fields, which [`telemetry::parse_flat_json`] readers ignore).
    pub fn load(path: &Path) -> Result<(Self, Vec<String>), String> {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                return Ok((Self::default(), Vec::new()))
            }
            Err(e) => return Err(format!("reading {}: {e}", path.display())),
        };
        let mut store = Self::default();
        let mut warnings = Vec::new();
        for (i, line) in text.lines().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            match CalibrationCell::from_json_line(line) {
                Ok(c) => store.cells.push(c),
                Err(e) => warnings.push(format!("skipping calibration line {}: {e}", i + 1)),
            }
        }
        Ok((store, warnings))
    }

    /// Human-readable table dump.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "calibration store — {} cell{}\n",
            self.cells.len(),
            if self.cells.len() == 1 { "" } else { "s" }
        ));
        for c in &self.cells {
            out.push_str(&format!(
                "\n{} N=2^{} {} S={}  ({} run{})\n",
                c.key.host,
                c.key.n_bucket,
                c.key.mix,
                c.key.s,
                c.runs,
                if c.runs == 1 { "" } else { "s" }
            ));
            for name in COEFFS {
                out.push_str(&format!("  {name:<14} {:.3e}\n", coeff(&c.model, name)));
            }
            if c.audit_count > 0 {
                out.push_str(&format!(
                    "  audit          {} predictions, mean rel err {:.3}, worst p90 {:.3}\n",
                    c.audit_count, c.audit_mean, c.audit_p90
                ));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model(scale: f64) -> CostModel {
        let mut m = CostModel::new();
        m.c_p2m = 1.0e-8 * scale;
        m.c_m2m = 2.0e-8 * scale;
        m.c_m2l = 3.0e-9 * scale;
        m.c_l2l = 2.0e-8 * scale;
        m.c_l2p = 1.5e-8 * scale;
        m.c_cpu_pair = 4.0e-10 * scale;
        m.c_node = 5.0e-7 * scale;
        m.c_gpu_pair = 1.0e-11 * scale;
        m.parallel_rate = 8.0 * scale;
        m.set_observed(true);
        m
    }

    fn key() -> CalibrationKey {
        CalibrationKey::new("linux-x86_64-16c", 1_000_000, 10, 4, 96)
    }

    #[test]
    fn key_buckets_and_mix() {
        let k = key();
        assert_eq!(k.n_bucket, 19); // 2^19 = 524288 ≤ 1e6 < 2^20
        assert_eq!(k.mix, "10c4g");
        assert_eq!(n_bucket(0), 0);
        assert_eq!(n_bucket(1), 0);
        assert_eq!(n_bucket(2), 1);
        assert_eq!(mix_label(16, 0), "16c0g");
    }

    #[test]
    fn observe_is_a_running_mean() {
        let mut store = CalibrationStore::new();
        let audit = AuditStats {
            count: 10,
            acted: 2,
            mean: 0.10,
            median: 0.08,
            p90: 0.2,
            max: 0.5,
        };
        store.observe(key(), &model(1.0), Some(&audit));
        store.observe(key(), &model(3.0), Some(&audit));
        assert_eq!(store.len(), 1);
        let c = store.get(&key()).unwrap();
        assert_eq!(c.runs, 2);
        assert!((c.model.c_m2l - 2.0 * 3.0e-9).abs() < 1e-18); // mean of 1× and 3×
        assert!((c.model.parallel_rate - 16.0).abs() < 1e-9);
        assert_eq!(c.audit_count, 20);
        assert!((c.audit_mean - 0.10).abs() < 1e-12);
        assert!((c.audit_p90 - 0.2).abs() < 1e-12);
        assert!(c.model.is_observed());
    }

    #[test]
    fn different_keys_get_different_cells() {
        let mut store = CalibrationStore::new();
        store.observe(key(), &model(1.0), None);
        store.observe(
            CalibrationKey::new("linux-x86_64-16c", 1_000_000, 10, 4, 128),
            &model(2.0),
            None,
        );
        assert_eq!(store.len(), 2);
    }

    #[test]
    fn save_load_round_trips() {
        let dir = std::env::temp_dir().join(format!("afmm-calib-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("calibration.jsonl");
        let mut store = CalibrationStore::new();
        let audit = AuditStats {
            count: 5,
            acted: 1,
            mean: 0.07,
            median: 0.06,
            p90: 0.11,
            max: 0.3,
        };
        store.observe(key(), &model(1.0), Some(&audit));
        store.save(&path).unwrap();
        let (back, warnings) = CalibrationStore::load(&path).unwrap();
        assert!(warnings.is_empty(), "{warnings:?}");
        assert_eq!(back.len(), 1);
        let c = back.get(&key()).unwrap();
        assert_eq!(c.runs, 1);
        assert!((c.model.c_m2l - 3.0e-9).abs() < 1e-20);
        assert_eq!(c.audit_count, 5);
        // Save → load → save is byte-stable.
        let text = std::fs::read_to_string(&path).unwrap();
        back.save(&path).unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), text);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn load_tolerates_unknown_fields_and_skips_corrupt_lines() {
        let dir = std::env::temp_dir().join(format!("afmm-calib-fwd-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("calibration.jsonl");
        let mut store = CalibrationStore::new();
        store.observe(key(), &model(1.0), None);
        store.save(&path).unwrap();
        let grown = std::fs::read_to_string(&path)
            .unwrap()
            .replace("{\"host\"", "{\"gpu_clock_mhz\":2100,\"host\"")
            + "this line is not json\n";
        std::fs::write(&path, grown).unwrap();
        let (back, warnings) = CalibrationStore::load(&path).unwrap();
        assert_eq!(back.len(), 1);
        assert_eq!(warnings.len(), 1);
        assert!(warnings[0].contains("line 2"), "{warnings:?}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_file_is_empty_store() {
        let (store, warnings) =
            CalibrationStore::load(Path::new("/nonexistent/afmm/calib.jsonl")).unwrap();
        assert!(store.is_empty());
        assert!(warnings.is_empty());
    }

    #[test]
    fn render_lists_cells() {
        let mut store = CalibrationStore::new();
        store.observe(key(), &model(1.0), None);
        let text = store.render();
        assert!(
            text.contains("linux-x86_64-16c N=2^19 10c4g S=96"),
            "{text}"
        );
        assert!(text.contains("c_m2l"), "{text}");
    }
}
