//! Lowering the live [`ExecutionPlan`](crate::ExecutionPlan) data into a
//! dependency-driven task DAG.
//!
//! [`crate::build_task_graph`] reproduces the paper's recursive OpenMP
//! execution: one merged task per node and sweep, with the whole downward
//! sweep gated on the upward sweep's root task (the `taskwait` barrier).
//! This module instead emits the *fine-grained* dependency structure of
//! Ltaief & Yokota (arXiv:1203.0889):
//!
//! * **P2M(leaf)** / **M2M(node)** — one task per visible non-empty node,
//!   depending on its children's tasks (the upward chain, unchanged).
//! * **M2L(node)** — gated only on its *source nodes'* M2M tasks, not on
//!   the whole upsweep: a node's M2L can fire as soon as the well-separated
//!   multipoles it reads exist, while distant subtrees are still sweeping up.
//! * **L2L(node)** — gated on the parent's local-expansion completion plus
//!   the node's own M2L (both write the node's local expansion).
//! * **L2P(leaf)** — gated on the leaf's local-expansion completion.
//! * **P2P(leaf)** — depends on nothing (it reads only positions): on a
//!   CPU-only node it overlaps the entire far field; with GPUs online the
//!   near field becomes pre-timed device-lane tasks instead.
//!
//! Every task carries a [`PhaseTag`] so the schedule's per-task completion
//! times can be re-aggregated into *measured* per-phase spans.

use fmm_math::OpFlops;
use octree::{InteractionLists, NodeId, Octree, NONE};
use sched_sim::{DagResult, TaskGraph, TaskId};

/// Which FMM phase a task belongs to (parallel array to the graph's tasks).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PhaseTag {
    P2m,
    M2m,
    M2l,
    L2l,
    L2p,
    P2p,
}

impl PhaseTag {
    pub const ALL: [PhaseTag; 6] = [
        PhaseTag::P2m,
        PhaseTag::M2m,
        PhaseTag::M2l,
        PhaseTag::L2l,
        PhaseTag::L2p,
        PhaseTag::P2p,
    ];

    pub fn index(self) -> usize {
        self as usize
    }

    /// Stable lowercase label for telemetry fields and CLI tables.
    pub fn label(self) -> &'static str {
        match self {
            PhaseTag::P2m => "p2m",
            PhaseTag::M2m => "m2m",
            PhaseTag::M2l => "m2l",
            PhaseTag::L2l => "l2l",
            PhaseTag::L2p => "l2p",
            PhaseTag::P2p => "p2p",
        }
    }
}

/// A task graph plus the phase tag of every task in it.
#[derive(Clone, Debug, Default)]
pub struct DagLowering {
    pub graph: TaskGraph,
    pub phase: Vec<PhaseTag>,
}

impl DagLowering {
    fn add(&mut self, tag: PhaseTag, cost: f64, deps: Vec<TaskId>) -> TaskId {
        let id = self.graph.add(cost, deps);
        self.phase.push(tag);
        id
    }

    /// Append a pre-timed near-field kernel pinned to GPU lane `device`
    /// (`seconds` of device occupancy, no dependencies: P2P reads only
    /// positions and overlaps the whole far field).
    pub fn add_gpu_task(&mut self, device: u16, seconds: f64) -> TaskId {
        let id = self.graph.add_gpu(device, seconds, Vec::new());
        self.phase.push(PhaseTag::P2p);
        id
    }
}

/// Measured wall-clock extent and busy time of one FMM phase within a
/// dependency-driven schedule.
#[derive(Clone, Copy, Debug, Default)]
pub struct PhaseSpan {
    /// Sum of task durations tagged with this phase (core- or
    /// device-seconds of occupancy).
    pub busy: f64,
    /// Earliest task start in the phase.
    pub start: f64,
    /// Latest task finish in the phase.
    pub end: f64,
    /// Number of tasks tagged with this phase.
    pub tasks: usize,
}

impl PhaseSpan {
    /// Wall-clock extent of the phase (0 when the phase had no tasks).
    pub fn extent(&self) -> f64 {
        (self.end - self.start).max(0.0)
    }
}

/// Per-phase measured spans of one scheduled step.
#[derive(Clone, Copy, Debug, Default)]
pub struct PhaseSpans {
    spans: [PhaseSpan; 6],
}

impl PhaseSpans {
    pub fn get(&self, tag: PhaseTag) -> &PhaseSpan {
        &self.spans[tag.index()]
    }

    pub fn iter(&self) -> impl Iterator<Item = (PhaseTag, &PhaseSpan)> {
        PhaseTag::ALL
            .iter()
            .map(move |&t| (t, &self.spans[t.index()]))
    }

    /// Total busy seconds over the far-field phases (P2M..L2P, excluding
    /// P2P) — on a GPU-offloaded step this equals the step's
    /// `cpu_work_seconds`.
    pub fn far_field_busy(&self) -> f64 {
        PhaseTag::ALL
            .iter()
            .filter(|&&t| t != PhaseTag::P2p)
            .map(|&t| self.spans[t.index()].busy)
            .sum()
    }
}

/// One task's realized schedule, joined with its FMM phase — the
/// `sched.task` telemetry payload.
#[derive(Clone, Copy, Debug)]
pub struct TaskTrace {
    pub task: TaskId,
    pub phase: PhaseTag,
    /// Execution slot: `< cores` is a CPU core, else `cores + GPU lane`.
    pub slot: u32,
    /// Bottom-level (critical-path-to-exit) priority the dispatcher used.
    pub prio: f64,
    /// Instant the task's last dependency completed (0 for roots).
    pub ready: f64,
    pub start: f64,
    pub finish: f64,
}

impl TaskTrace {
    pub fn duration(&self) -> f64 {
        self.finish - self.start
    }
}

/// The scheduler X-ray of one Dag-mode step: every task's realized
/// schedule, the lane/critical-path analytics, and the critical path's
/// duration re-aggregated by FMM phase. Produced only when
/// [`ExecPolicy::trace`](crate::ExecPolicy) is set — it is strictly
/// observational and never feeds back into the timing.
#[derive(Clone, Debug)]
pub struct SchedXray {
    /// CPU cores the schedule ran on (decodes [`TaskTrace::slot`]).
    pub cores: usize,
    /// GPU lanes the schedule ran on.
    pub gpu_lanes: usize,
    /// Which dual-pass anomaly-guard order won.
    pub pass: sched_sim::SchedPass,
    /// Lane stats, realized critical path, and bottleneck attribution.
    pub analysis: sched_sim::SchedAnalysis,
    /// Per-task traces, indexed by [`TaskId`].
    pub tasks: Vec<TaskTrace>,
    /// Critical-path duration attributed to each phase (indexed by
    /// [`PhaseTag::index`]), normalized by the path's duration sum —
    /// sums to 1.0 on any non-empty schedule.
    pub crit_phase_frac: [f64; 6],
    /// Busy fraction of each GPU lane over the makespan, indexed by device
    /// (from [`DagResult::lane_utilization`]).
    pub gpu_lane_util: Vec<f64>,
}

impl SchedXray {
    /// Join the lowering's phase tags with a finished schedule.
    pub fn build(lowering: &DagLowering, cfg: &sched_sim::DagConfig, result: &DagResult) -> Self {
        let analysis = sched_sim::analyze(&lowering.graph, result);
        let prio = sched_sim::bottom_levels(&lowering.graph, cfg);
        let tasks: Vec<TaskTrace> = lowering
            .phase
            .iter()
            .enumerate()
            .map(|(i, &phase)| TaskTrace {
                task: i as TaskId,
                phase,
                slot: result.slot[i],
                prio: prio[i],
                ready: result.ready[i],
                start: result.start[i],
                finish: result.finish[i],
            })
            .collect();
        let mut phase_s = [0.0f64; 6];
        for c in &analysis.crit_path {
            phase_s[lowering.phase[c.task as usize].index()] += c.duration();
        }
        let denom = if analysis.crit_sum > 0.0 {
            analysis.crit_sum
        } else {
            1.0
        };
        let crit_phase_frac = phase_s.map(|s| s / denom);
        let gpu_lane_util = (0..result.gpu_busy.len())
            .map(|d| result.lane_utilization(d))
            .collect();
        SchedXray {
            cores: result.cores,
            gpu_lanes: result.gpu_busy.len(),
            pass: result.pass,
            analysis,
            tasks,
            crit_phase_frac,
            gpu_lane_util,
        }
    }

    /// Phase of each critical-path entry, aligned with
    /// `analysis.crit_path`.
    pub fn crit_phases(&self) -> Vec<PhaseTag> {
        self.analysis
            .crit_path
            .iter()
            .map(|c| self.tasks[c.task as usize].phase)
            .collect()
    }
}

/// Aggregate a schedule's per-task completion times into per-phase spans.
pub fn measure_spans(lowering: &DagLowering, result: &DagResult) -> PhaseSpans {
    let mut spans = PhaseSpans::default();
    for (i, &tag) in lowering.phase.iter().enumerate() {
        let s = &mut spans.spans[tag.index()];
        let (start, finish) = (result.start[i], result.finish[i]);
        if s.tasks == 0 {
            s.start = start;
            s.end = finish;
        } else {
            s.start = s.start.min(start);
            s.end = s.end.max(finish);
        }
        s.busy += finish - start;
        s.tasks += 1;
    }
    spans
}

/// Lower the live plan data (tree parent/child edges, M2L/P2P interaction
/// lists, per-op flop costs) into the fine-grained task DAG described in
/// the module docs.
///
/// `include_p2p` folds the near field into the CPU graph (CPU-only nodes);
/// `include_pl` keeps the per-body P2M/L2P work on the CPU (false models
/// the §VIII.E expansion offload). GPU-lane tasks are *not* added here —
/// the caller appends them via [`DagLowering::add_gpu_task`] once the
/// simulated kernel timings are known.
pub fn lower_plan(
    tree: &Octree,
    lists: &InteractionLists,
    flops: &OpFlops,
    include_p2p: bool,
    include_pl: bool,
) -> DagLowering {
    let mut low = DagLowering {
        graph: TaskGraph::with_capacity(4 * tree.num_nodes()),
        phase: Vec::with_capacity(4 * tree.num_nodes()),
    };
    if tree.node(Octree::ROOT).count() == 0 {
        return low;
    }
    // Pass 1 — upward sweep, post-order. `up_task[n]` is the task producing
    // node n's multipole expansion.
    let mut up_task = vec![NO_TASK; tree.num_nodes()];
    add_up(
        &mut low,
        tree,
        flops,
        include_pl,
        Octree::ROOT,
        &mut up_task,
    );
    // Pass 2 — downward sweep, pre-order. `local_done(n)` is the last task
    // writing node n's local expansion (its L2L, or its M2L at the root).
    add_down(
        &mut low,
        tree,
        lists,
        flops,
        include_p2p,
        include_pl,
        Octree::ROOT,
        None,
        &up_task,
    );
    low
}

const NO_TASK: TaskId = TaskId::MAX;

fn add_up(
    low: &mut DagLowering,
    tree: &Octree,
    flops: &OpFlops,
    include_pl: bool,
    id: NodeId,
    up_task: &mut [TaskId],
) -> TaskId {
    let node = tree.node(id);
    let task = if node.is_leaf() {
        let cost = if include_pl {
            flops.p2m_per_body * node.count() as f64
        } else {
            0.0
        };
        low.add(PhaseTag::P2m, cost, Vec::new())
    } else {
        let mut deps = Vec::with_capacity(8);
        for c in tree.visible_children(id) {
            if tree.node(c).count() == 0 {
                continue;
            }
            deps.push(add_up(low, tree, flops, include_pl, c, up_task));
        }
        let m2m = deps.len();
        low.add(PhaseTag::M2m, flops.m2m * m2m as f64, deps)
    };
    up_task[id as usize] = task;
    task
}

#[allow(clippy::too_many_arguments)]
fn add_down(
    low: &mut DagLowering,
    tree: &Octree,
    lists: &InteractionLists,
    flops: &OpFlops,
    include_p2p: bool,
    include_pl: bool,
    id: NodeId,
    parent_local: Option<TaskId>,
    up_task: &[TaskId],
) {
    let node = tree.node(id);
    if node.count() == 0 {
        return;
    }
    // M2L: gated only on the *source* multipoles — the de-barriered edge.
    let m2l_list = &lists.m2l[id as usize];
    let m2l = if m2l_list.is_empty() {
        None
    } else {
        let deps: Vec<TaskId> = m2l_list
            .iter()
            .map(|&src| up_task[src as usize])
            .filter(|&t| t != NO_TASK)
            .collect();
        Some(low.add(PhaseTag::M2l, flops.m2l * m2l_list.len() as f64, deps))
    };
    // L2L: both the parent's local expansion and this node's M2L write the
    // node's local, so the translation waits for both.
    let local_done = if node.parent != NONE {
        let deps: Vec<TaskId> = parent_local.into_iter().chain(m2l).collect();
        Some(low.add(PhaseTag::L2l, flops.l2l, deps))
    } else {
        m2l
    };
    if node.is_leaf() {
        if include_pl {
            let deps: Vec<TaskId> = local_done.into_iter().collect();
            low.add(
                PhaseTag::L2p,
                flops.l2p_per_body * node.count() as f64,
                deps,
            );
        }
        if include_p2p {
            let pairs = lists.leaf_pairs(tree, id);
            if pairs > 0 {
                low.add(PhaseTag::P2p, flops.p2p_per_pair * pairs as f64, Vec::new());
            }
        }
    }
    for c in tree.visible_children(id) {
        add_down(
            low,
            tree,
            lists,
            flops,
            include_p2p,
            include_pl,
            c,
            local_done,
            up_task,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build_task_graph_with;
    use crate::config::FmmParams;
    use crate::engine::FmmEngine;
    use fmm_math::{GravityKernel, Kernel};
    use nbody::plummer;
    use sched_sim::{critical_path, schedule, DagConfig, SimConfig};

    fn engine(n: usize, s: usize) -> FmmEngine<GravityKernel> {
        let b = plummer(n, 1.0, 1.0, 231);
        let mut e = FmmEngine::new(GravityKernel::default(), FmmParams::default(), &b.pos, s);
        e.refresh_lists();
        e
    }

    #[test]
    fn lowering_conserves_total_work() {
        let e = engine(2000, 32);
        let f = e.kernel.op_flops(e.expansion_ops());
        for (p2p, pl) in [(true, true), (false, true), (false, false)] {
            let barrier = build_task_graph_with(e.tree(), e.lists(), &f, p2p, pl);
            let low = lower_plan(e.tree(), e.lists(), &f, p2p, pl);
            assert!(
                (low.graph.total_work() - barrier.total_work()).abs()
                    <= 1e-9 * barrier.total_work().max(1.0),
                "work mismatch at p2p={p2p} pl={pl}"
            );
            assert_eq!(low.phase.len(), low.graph.len());
        }
    }

    #[test]
    fn lowering_shortens_critical_path() {
        // Removing the upsweep→downsweep barrier can only shorten (or keep)
        // the longest dependency chain.
        let e = engine(3000, 24);
        let f = e.kernel.op_flops(e.expansion_ops());
        let barrier = build_task_graph_with(e.tree(), e.lists(), &f, true, true);
        let low = lower_plan(e.tree(), e.lists(), &f, true, true);
        let cp_low = critical_path(&low.graph);
        let cp_bar = critical_path(&barrier);
        assert!(
            cp_low <= cp_bar + 1e-12,
            "lowered span {cp_low} vs barrier {cp_bar}"
        );
        assert!(cp_low > 0.0);
    }

    #[test]
    fn empty_tree_lowers_to_empty_graph() {
        let mut e = FmmEngine::new(GravityKernel::default(), FmmParams::default(), &[], 8);
        e.refresh_lists();
        let f = e.kernel.op_flops(e.expansion_ops());
        let low = lower_plan(e.tree(), e.lists(), &f, true, true);
        assert!(low.graph.is_empty());
        assert!(low.phase.is_empty());
    }

    #[test]
    fn measured_spans_cover_all_tasks_and_busy() {
        let e = engine(1500, 16);
        let f = e.kernel.op_flops(e.expansion_ops());
        let mut low = lower_plan(e.tree(), e.lists(), &f, false, true);
        low.add_gpu_task(0, 0.25);
        low.add_gpu_task(1, 0.5);
        let r = schedule(
            &low.graph,
            &DagConfig {
                cpu: SimConfig::ideal(4, 1e9),
                gpu_lanes: 2,
            },
        );
        let spans = measure_spans(&low, &r);
        let tasks: usize = spans.iter().map(|(_, s)| s.tasks).sum();
        assert_eq!(tasks, low.graph.len());
        let busy: f64 = spans.iter().map(|(_, s)| s.busy).sum();
        let total: f64 = r.busy.iter().sum::<f64>() + r.gpu_busy.iter().sum::<f64>();
        assert!((busy - total).abs() <= 1e-9 * total.max(1.0));
        // The GPU near field is tagged P2P and spans both kernels.
        assert_eq!(spans.get(PhaseTag::P2p).tasks, 2);
        assert!((spans.get(PhaseTag::P2p).busy - 0.75).abs() < 1e-12);
        // Phase ordering: P2M starts first, L2P ends last (leaf work).
        assert_eq!(spans.get(PhaseTag::P2m).start, 0.0);
        assert!(spans.get(PhaseTag::L2p).end >= spans.get(PhaseTag::L2l).end);
    }

    #[test]
    fn m2l_fires_before_upsweep_completes() {
        // The whole point of the refactor: on a wide-enough tree some M2L
        // task must *start* before the last M2M *finishes* — impossible
        // under the barrier model.
        let e = engine(4000, 16);
        let f = e.kernel.op_flops(e.expansion_ops());
        let low = lower_plan(e.tree(), e.lists(), &f, false, true);
        let r = schedule(&low.graph, &DagConfig::cpu_only(SimConfig::ideal(8, 1e9)));
        let spans = measure_spans(&low, &r);
        assert!(spans.get(PhaseTag::M2l).tasks > 0);
        assert!(
            spans.get(PhaseTag::M2l).start < spans.get(PhaseTag::M2m).end,
            "M2L must overlap the upward sweep: m2l starts {} vs m2m ends {}",
            spans.get(PhaseTag::M2l).start,
            spans.get(PhaseTag::M2m).end
        );
    }
}
