//! Seeded, deterministic chaos plans: fault scripts extended with state
//! corruption and kill-and-restore events, for soak-testing the supervisor.
//!
//! A [`ChaosPlan`] is generated from a seed alone, so every scenario is
//! reproducible from its number. It has two halves:
//!
//! * the [`FaultEvent`] subset, exported as a [`FaultSchedule`] that is
//!   **valid by construction** (dropout/recover windows never overlap,
//!   factors are in range — the invariants [`FaultSchedule::try_with`]
//!   enforces), installed on the tracker and fired by the timing layer;
//! * corruption events ([`ChaosEvent::NanBody`], [`ChaosEvent::TruncatePlan`],
//!   [`ChaosEvent::StaleEpoch`], [`ChaosEvent::KillRestore`]), injected by
//!   the driver *behind the engine's back* via [`inject`] — the state rot
//!   the audits and the escalation ladder exist to catch.
//!
//! Roughly one scheduled step in six is a *storm*: several events landing
//! on the same step (e.g. a double device dropout, or corruption while a
//! fault window is open).

use crate::supervisor::Supervisor;
use fmm_math::Kernel;
use geom::Vec3;
use gpu_sim::{FaultEvent, FaultSchedule};
use std::collections::BTreeSet;

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// One disturbance of a chaos scenario: either a regular timed fault or a
/// state corruption the fault layer cannot express.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum ChaosEvent {
    /// A virtual-node fault, fired through the tracker's [`FaultSchedule`].
    Fault(FaultEvent),
    /// Overwrite one body coordinate with NaN in the driver's position
    /// buffer — the classic upstream-integrator bug.
    NanBody { index: usize },
    /// Truncate one interaction list inside the live plan without updating
    /// inverses or counts (breaks inverse-list symmetry).
    TruncatePlan,
    /// Rewind the plan epoch below its stamps (breaks monotonicity).
    StaleEpoch,
    /// Kill the run and restore from the last checkpoint mid-flight.
    KillRestore,
}

impl ChaosEvent {
    /// Is this a corruption event (driver-injected) rather than a fault?
    pub fn is_corruption(&self) -> bool {
        !matches!(self, ChaosEvent::Fault(_))
    }

    pub fn name(&self) -> &'static str {
        match self {
            ChaosEvent::Fault(FaultEvent::GpuSlowdown { .. }) => "gpu_slowdown",
            ChaosEvent::Fault(FaultEvent::GpuDropout { .. }) => "gpu_dropout",
            ChaosEvent::Fault(FaultEvent::GpuRecover { .. }) => "gpu_recover",
            ChaosEvent::Fault(FaultEvent::ExternalCpuLoad { .. }) => "cpu_load",
            ChaosEvent::Fault(FaultEvent::TimingNoise { .. }) => "noise",
            ChaosEvent::NanBody { .. } => "nan_body",
            ChaosEvent::TruncatePlan => "truncate_plan",
            ChaosEvent::StaleEpoch => "stale_epoch",
            ChaosEvent::KillRestore => "kill_restore",
        }
    }
}

/// A [`ChaosEvent`] scheduled for a specific step.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TimedChaos {
    pub step: usize,
    pub event: ChaosEvent,
}

/// A deterministic, seed-reproducible chaos scenario.
#[derive(Clone, Debug)]
pub struct ChaosPlan {
    pub seed: u64,
    /// Events sorted by step (stable within a step).
    pub events: Vec<TimedChaos>,
}

impl ChaosPlan {
    /// Generate a scenario from a seed: events spread over `steps` steps
    /// against a node with `num_devices` GPUs and `n_bodies` bodies.
    /// The same arguments always produce the same plan.
    pub fn generate(seed: u64, steps: usize, num_devices: usize, n_bodies: usize) -> Self {
        let mut rng = seed;
        let mut events = Vec::new();
        let mut down: BTreeSet<usize> = BTreeSet::new();
        // Leave the first few steps quiet so the balancer gets a baseline.
        let mut step = 3 + (splitmix64(&mut rng) % 3) as usize;
        while step < steps {
            let storm = splitmix64(&mut rng).is_multiple_of(6);
            let burst = if storm {
                2 + (splitmix64(&mut rng) % 3) as usize
            } else {
                1
            };
            for _ in 0..burst {
                let mut kind = splitmix64(&mut rng) % 10;
                if num_devices == 0 && kind <= 3 {
                    kind = 4 + kind % 2; // no GPUs: remap to host-side faults
                }
                let event = match kind {
                    // Dropout/recover as a toggle per device, so windows
                    // never overlap and recovers are never unmatched.
                    0..=2 => {
                        let device = (splitmix64(&mut rng) % num_devices as u64) as usize;
                        if down.remove(&device) {
                            ChaosEvent::Fault(FaultEvent::GpuRecover { device })
                        } else {
                            down.insert(device);
                            ChaosEvent::Fault(FaultEvent::GpuDropout { device })
                        }
                    }
                    3 => ChaosEvent::Fault(FaultEvent::GpuSlowdown {
                        device: (splitmix64(&mut rng) % num_devices as u64) as usize,
                        factor: 1.0 + (splitmix64(&mut rng) % 30) as f64 / 10.0,
                    }),
                    4 => ChaosEvent::Fault(FaultEvent::ExternalCpuLoad {
                        factor: 1.0 + (splitmix64(&mut rng) % 40) as f64 / 10.0,
                    }),
                    5 => ChaosEvent::Fault(FaultEvent::TimingNoise {
                        sigma: (splitmix64(&mut rng) % 25) as f64 / 100.0,
                    }),
                    6 => ChaosEvent::NanBody {
                        index: (splitmix64(&mut rng) % n_bodies.max(1) as u64) as usize,
                    },
                    7 => ChaosEvent::TruncatePlan,
                    8 => ChaosEvent::StaleEpoch,
                    _ => ChaosEvent::KillRestore,
                };
                events.push(TimedChaos { step, event });
            }
            step += 2 + (splitmix64(&mut rng) % 6) as usize;
        }
        ChaosPlan { seed, events }
    }

    /// The fault half of the plan as a schedule for
    /// [`StrategyTracker::set_fault_schedule`](crate::StrategyTracker::set_fault_schedule).
    /// Valid by construction; [`FaultSchedule::validate`] proves it.
    pub fn fault_schedule(&self) -> FaultSchedule {
        let mut s = FaultSchedule::new();
        for tc in &self.events {
            if let ChaosEvent::Fault(ev) = tc.event {
                s.push(tc.step, ev);
            }
        }
        s
    }

    /// Corruption events scheduled for exactly `step`, in plan order.
    pub fn corruption_at(&self, step: usize) -> impl Iterator<Item = &ChaosEvent> {
        self.events
            .iter()
            .filter(move |tc| tc.step == step && tc.event.is_corruption())
            .map(|tc| &tc.event)
    }

    /// Does the plan contain any corruption event at all?
    pub fn has_corruption(&self) -> bool {
        self.events.iter().any(|tc| tc.event.is_corruption())
    }

    /// Steps on which at least one corruption event fires.
    pub fn corruption_steps(&self) -> Vec<usize> {
        let mut steps: Vec<usize> = self
            .events
            .iter()
            .filter(|tc| tc.event.is_corruption())
            .map(|tc| tc.step)
            .collect();
        steps.dedup();
        steps
    }
}

/// Inject one corruption event into a supervised run. `pos` is the driver's
/// live position buffer for the upcoming step; [`ChaosEvent::KillRestore`]
/// replaces it with the checkpoint's positions. Returns whether anything
/// actually mutated ([`ChaosEvent::Fault`] never does — faults fire through
/// the schedule inside the step).
pub fn inject<K: Kernel + Copy>(
    event: &ChaosEvent,
    sup: &mut Supervisor<K>,
    pos: &mut Vec<Vec3>,
) -> bool {
    match event {
        ChaosEvent::Fault(_) => false,
        ChaosEvent::NanBody { index } => {
            if pos.is_empty() {
                return false;
            }
            let i = index % pos.len();
            pos[i].x = f64::NAN;
            true
        }
        ChaosEvent::TruncatePlan => sup
            .tracker_mut()
            .engine_mut()
            .plan_mut_for_chaos()
            .map(|p| p.corrupt_truncate_list())
            .unwrap_or(false),
        ChaosEvent::StaleEpoch => sup
            .tracker_mut()
            .engine_mut()
            .plan_mut_for_chaos()
            .map(|p| p.corrupt_stale_epoch())
            .unwrap_or(false),
        ChaosEvent::KillRestore => {
            if sup.last_checkpoint().is_none() {
                // Nothing to restore from; only checkpoint if the state is
                // healthy, else the kill is a no-op for this scenario.
                if !sup.checkpoint_if_healthy(pos) {
                    return false;
                }
            }
            match sup.restore_from_checkpoint() {
                Ok(saved) => {
                    *pos = saved;
                    true
                }
                Err(_) => false,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let a = ChaosPlan::generate(42, 80, 2, 1000);
        let b = ChaosPlan::generate(42, 80, 2, 1000);
        assert_eq!(a.events, b.events);
        let c = ChaosPlan::generate(43, 80, 2, 1000);
        assert_ne!(a.events, c.events, "different seeds, different plans");
    }

    #[test]
    fn fault_half_is_always_a_valid_schedule() {
        for seed in 0..200 {
            for devices in [0usize, 1, 2, 4] {
                let plan = ChaosPlan::generate(seed, 60, devices, 500);
                plan.fault_schedule()
                    .validate()
                    .unwrap_or_else(|e| panic!("seed {seed}, {devices} devices: {e}"));
            }
        }
    }

    #[test]
    fn events_are_sorted_and_eventually_corrupting() {
        let mut corrupting = 0;
        for seed in 0..50 {
            let plan = ChaosPlan::generate(seed, 100, 2, 800);
            assert!(
                plan.events.windows(2).all(|w| w[0].step <= w[1].step),
                "seed {seed} out of order"
            );
            if plan.has_corruption() {
                corrupting += 1;
            }
        }
        assert!(
            corrupting > 30,
            "most seeds should include corruption events, got {corrupting}"
        );
    }

    #[test]
    fn cpu_only_plans_carry_no_gpu_faults() {
        for seed in 0..50 {
            let plan = ChaosPlan::generate(seed, 60, 0, 500);
            assert!(plan.events.iter().all(|tc| !matches!(
                tc.event,
                ChaosEvent::Fault(ev) if ev.is_gpu_event()
            )));
        }
    }
}
