//! Offline replay validation: reconstruct the [`crate::LoadBalancer`]
//! trajectory from a telemetry trace and check that it was *legal* — plus a
//! step-aligned diff of two runs.
//!
//! The validator is the read-side contract of the balancer's flight
//! recorder: every `lb.transition` must be an edge the state machine can
//! actually take, Recovery must be provoked by a device-count change,
//! Observation-state `Enforce_S` must have a recorded cause, S must stay
//! inside the configured bounds, and the cost model must not silently
//! drift. A trace that fails here either came from a corrupted file or
//! from a balancer bug — both worth failing CI over.
//!
//! Invariant names (stable, used by tests and the `afmm-trace` CLI):
//!
//! | invariant              | meaning                                          |
//! |------------------------|--------------------------------------------------|
//! | `seq_monotone`         | record sequence numbers strictly increase        |
//! | `missing_config`       | no `run.config` header in a trace with steps     |
//! | `transition_legality`  | an `lb.transition` edge the machine cannot take  |
//! | `state_continuity`     | transition `from` ≠ reconstructed current state, |
//! |                        | or `step.record.state` ≠ state at step start     |
//! | `recovery_cause`       | Recovery without device-count change evidence    |
//! | `s_bounds`             | S outside `[s_min, s_max]` from `run.config`     |
//! | `enforce_provenance`   | Observation-state enforce with no recorded       |
//! |                        | regression/anomaly signal                        |
//! | `audit_drift`          | audited prediction error beyond tolerance        |
//! | `phase_reconciliation` | per-step `phase.*` span durations do not sum to  |
//! |                        | the step's reported scheduler makespan           |

use telemetry::{EventRecord, RecordKind, Value};

/// One invariant violation found during replay.
#[derive(Debug, Clone, PartialEq)]
pub struct Violation {
    /// Stable invariant name (see the module table).
    pub invariant: &'static str,
    /// Sequence number of the offending record (or the nearest anchor).
    pub seq: u64,
    /// Logical step of the offending record.
    pub step: u64,
    pub detail: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "[{}] seq {} step {}: {}",
            self.invariant, self.seq, self.step, self.detail
        )
    }
}

/// Tunables of [`validate_trace`].
#[derive(Debug, Clone, Copy)]
pub struct ValidateOptions {
    /// Maximum tolerated audited relative prediction error on steps where
    /// the balancer did not act. Deliberately generous: the audit gate in CI
    /// already alarms at far lower error; this invariant catches corrupt
    /// traces and runaway models, not modeling noise.
    pub audit_tolerance: f64,
    /// How many steps back an `anomaly.*` event still counts as provenance
    /// for an Observation-state enforce.
    pub anomaly_window: u64,
    /// Maximum tolerated relative gap between a step's summed CPU-side
    /// `phase.*` span durations and its reported scheduler makespan
    /// (`step.record.t_sched`). Measured DAG spans sum to the makespan
    /// exactly; attributed Barrier spans undershoot by the task-overhead
    /// share — both land well inside this bound, while a zeroed or scaled
    /// span from a corrupted trace does not. Steps missing either side
    /// (older traces) are skipped.
    ///
    /// `None` (the default) applies the tolerance the run itself recorded —
    /// [`crate::ExecPolicy::phase_tolerance`], carried in the trace's
    /// `run.config` header and refreshed by `exec.policy` events — falling
    /// back to [`crate::DEFAULT_PHASE_TOLERANCE`] for older traces.
    /// `Some(t)` overrides both (the CLI's `--phase-tol`).
    pub phase_tolerance: Option<f64>,
}

impl Default for ValidateOptions {
    fn default() -> Self {
        ValidateOptions {
            audit_tolerance: 10.0,
            anomaly_window: 3,
            phase_tolerance: None,
        }
    }
}

/// Outcome of [`validate_trace_report`]: the violations plus the realized
/// phase-reconciliation quality, so callers can report *how close* the
/// trace was instead of only pass/fail.
#[derive(Debug, Clone, Default)]
pub struct ValidationReport {
    pub violations: Vec<Violation>,
    /// Largest realized relative phase residual
    /// `|Σ phase spans − t_sched| / t_sched` over reconciled steps
    /// (0 when no step carried both sides).
    pub max_phase_residual: f64,
    /// Step the largest residual occurred on.
    pub max_phase_residual_step: Option<u64>,
    /// Number of steps that carried both reconciliation sides.
    pub reconciled_steps: usize,
    /// The relative tolerance the last reconciled step was checked against
    /// (the CLI override, the trace's recorded tolerance, or the default).
    pub phase_tolerance: f64,
}

fn str_field<'a>(r: &'a EventRecord, key: &str) -> Option<&'a str> {
    match r.field(key) {
        Some(Value::Str(s)) => Some(s.as_str()),
        _ => None,
    }
}

fn u64_field(r: &EventRecord, key: &str) -> Option<u64> {
    match r.field(key) {
        Some(Value::U64(v)) => Some(*v),
        _ => None,
    }
}

fn f64_field(r: &EventRecord, key: &str) -> Option<f64> {
    match r.field(key) {
        Some(Value::F64(v)) => Some(*v),
        Some(Value::U64(v)) => Some(*v as f64),
        _ => None,
    }
}

fn bool_field(r: &EventRecord, key: &str) -> Option<bool> {
    match r.field(key) {
        Some(Value::Bool(b)) => Some(*b),
        _ => None,
    }
}

/// Every (from, to, cause) edge the balancer can emit. Anything else in a
/// trace is a `transition_legality` violation.
const LEGAL_TRANSITIONS: &[(&str, &str, &str)] = &[
    // Search settles by strategy: StaticS freezes, EnforceOnly observes,
    // Full walks incrementally. Recovery exits through the same path.
    ("search", "frozen", "search_settled"),
    ("search", "observation", "search_settled"),
    ("search", "incremental", "search_settled"),
    ("recovery", "frozen", "search_settled"),
    ("recovery", "observation", "search_settled"),
    ("recovery", "incremental", "search_settled"),
    // The Incremental walk exhausts both directions and hands off.
    ("incremental", "observation", "incremental_settled"),
    // Observation falls back to the global walk when local repair fails.
    ("observation", "incremental", "repair_failed"),
    // Recovery is entered *solely* on a device-count change.
    ("search", "recovery", "device_count_changed"),
    ("incremental", "recovery", "device_count_changed"),
    ("observation", "recovery", "device_count_changed"),
    // Total GPU loss: CPU-only sweep, then straight to Observation.
    ("search", "observation", "all_gpus_offline"),
    ("incremental", "observation", "all_gpus_offline"),
    ("recovery", "observation", "all_gpus_offline"),
];

/// Replay a trace and collect every invariant violation (empty = legal run).
///
/// Thin wrapper over [`validate_trace_report`] for callers that only need
/// the violation list.
pub fn validate_trace(records: &[EventRecord], opts: &ValidateOptions) -> Vec<Violation> {
    validate_trace_report(records, opts).violations
}

/// Replay a trace, collect every invariant violation, and report the
/// realized phase-reconciliation residual (see [`ValidationReport`]).
///
/// `records` must be in emission order (as read back by
/// [`telemetry::TraceReader`]); the validator re-checks that via
/// `seq_monotone` rather than sorting.
pub fn validate_trace_report(records: &[EventRecord], opts: &ValidateOptions) -> ValidationReport {
    let mut report = ValidationReport::default();
    let mut out = Vec::new();
    let mut last_seq: Option<u64> = None;

    // run.config header: S bounds.
    let config = records.iter().find(|r| r.name == "run.config");
    let s_bounds = config.map(|c| {
        (
            u64_field(c, "s_min").unwrap_or(1),
            u64_field(c, "s_max").unwrap_or(u64::MAX),
        )
    });
    // The tolerance the run itself recorded, refreshed by `exec.policy`
    // events as the stream is replayed; a caller override beats it.
    let mut trace_tol = config
        .and_then(|c| f64_field(c, "phase_tolerance"))
        .unwrap_or(crate::exec::DEFAULT_PHASE_TOLERANCE);
    report.phase_tolerance = opts.phase_tolerance.unwrap_or(trace_tol);
    let has_steps = records.iter().any(|r| r.name == "step.record");
    if config.is_none() && has_steps {
        out.push(Violation {
            invariant: "missing_config",
            seq: records.first().map_or(0, |r| r.seq),
            step: 0,
            detail: "trace has step records but no run.config header".into(),
        });
    }

    // Per-step online-GPU counts, for recovery evidence.
    let online_at: Vec<(u64, u64)> = records
        .iter()
        .filter(|r| r.name == "step.record")
        .filter_map(|r| u64_field(r, "online_gpus").map(|o| (r.step, o)))
        .collect();
    let online_before = |step: u64| {
        online_at
            .iter()
            .rev()
            .find(|(s, _)| *s < step)
            .map(|(_, o)| *o)
    };
    let online_during = |step: u64| online_at.iter().find(|(s, _)| *s == step).map(|(_, o)| *o);

    // Reconstructed state machine.
    let mut cur_state = "search".to_string();
    let mut cur_step: Option<u64> = None;
    let mut state_at_step_start = cur_state.clone();
    // A supervisor restore rewinds the run to a checkpoint: step numbers
    // repeat and the balancer state jumps to whatever was checkpointed.
    // Resync the reconstruction at the next stateful record instead of
    // reporting the jump as a continuity violation.
    let mut resync = false;
    // Most recent lb.regression / anomaly.* seen, as (step, seq).
    let mut last_regression: Option<(u64, u64)> = None;
    let mut last_anomaly: Option<(u64, u64)> = None;
    // CPU-side phase.* span durations accumulated within the current step
    // (phase spans precede their step's step.record in emission order).
    let mut phase_sum = 0.0f64;
    let mut phase_spans = 0usize;

    for r in records {
        if let Some(prev) = last_seq {
            if r.seq <= prev {
                out.push(Violation {
                    invariant: "seq_monotone",
                    seq: r.seq,
                    step: r.step,
                    detail: format!("seq {} follows {}", r.seq, prev),
                });
            }
        }
        last_seq = Some(r.seq);

        if cur_step != Some(r.step) {
            // First record of a new step: whatever state the machine is in
            // now is the state this step *ran* in (transitions are emitted
            // in post_step, before the step's own step.record).
            cur_step = Some(r.step);
            state_at_step_start = cur_state.clone();
            phase_sum = 0.0;
            phase_spans = 0;
        }

        if r.kind == RecordKind::Span && r.name.starts_with("phase.") {
            // P2P on the GPUs runs on device lanes, not the CPU makespan.
            let on_gpu = r.name == "phase.p2p" && bool_field(r, "on_gpu").unwrap_or(false);
            if !on_gpu {
                if let Some(d) = r.dur_s {
                    phase_sum += d;
                    phase_spans += 1;
                }
            }
        }

        match r.name {
            "supervisor.restore" => resync = true,
            "lb.transition" => {
                let from = str_field(r, "from").unwrap_or("?");
                let to = str_field(r, "to").unwrap_or("?");
                let cause = str_field(r, "cause").unwrap_or("?");
                if resync {
                    cur_state = from.to_string();
                    state_at_step_start = cur_state.clone();
                    resync = false;
                }
                if !LEGAL_TRANSITIONS
                    .iter()
                    .any(|&(f, t, c)| f == from && t == to && c == cause)
                {
                    out.push(Violation {
                        invariant: "transition_legality",
                        seq: r.seq,
                        step: r.step,
                        detail: format!("illegal edge {from} -> {to} (cause: {cause})"),
                    });
                }
                if from != cur_state {
                    out.push(Violation {
                        invariant: "state_continuity",
                        seq: r.seq,
                        step: r.step,
                        detail: format!(
                            "transition claims from={from} but the machine is in {cur_state}"
                        ),
                    });
                }
                if to == "recovery" {
                    // Evidence: an lb.recovery event in the same step and a
                    // step-record online count that actually changed.
                    let has_marker = records
                        .iter()
                        .any(|m| m.name == "lb.recovery" && m.step == r.step);
                    if !has_marker {
                        out.push(Violation {
                            invariant: "recovery_cause",
                            seq: r.seq,
                            step: r.step,
                            detail: "recovery entered without an lb.recovery marker".into(),
                        });
                    }
                    if let (Some(before), Some(during)) =
                        (online_before(r.step), online_during(r.step))
                    {
                        if before == during {
                            out.push(Violation {
                                invariant: "recovery_cause",
                                seq: r.seq,
                                step: r.step,
                                detail: format!(
                                    "recovery entered but online GPU count stayed {during}"
                                ),
                            });
                        }
                    }
                }
                if let (Some(s), Some((lo, hi))) = (u64_field(r, "s"), s_bounds) {
                    if s < lo || s > hi {
                        out.push(Violation {
                            invariant: "s_bounds",
                            seq: r.seq,
                            step: r.step,
                            detail: format!("transition at S={s} outside [{lo}, {hi}]"),
                        });
                    }
                }
                cur_state = to.to_string();
            }
            "step.record" => {
                let state = str_field(r, "state").unwrap_or("?");
                if resync {
                    cur_state = state.to_string();
                    state_at_step_start = cur_state.clone();
                    resync = false;
                }
                if state != state_at_step_start {
                    out.push(Violation {
                        invariant: "state_continuity",
                        seq: r.seq,
                        step: r.step,
                        detail: format!(
                            "step ran in {state} but replay says {state_at_step_start}"
                        ),
                    });
                }
                if let (Some(s), Some((lo, hi))) = (u64_field(r, "s"), s_bounds) {
                    if s < lo || s > hi {
                        out.push(Violation {
                            invariant: "s_bounds",
                            seq: r.seq,
                            step: r.step,
                            detail: format!("step at S={s} outside [{lo}, {hi}]"),
                        });
                    }
                }
                // Phase-span reconciliation: the step's CPU-side phase
                // durations must sum to the undisturbed scheduler makespan.
                // Needs both sides present — older traces carry neither.
                if let Some(t_sched) = f64_field(r, "t_sched") {
                    if phase_spans > 0 && t_sched.is_finite() {
                        let tol = opts.phase_tolerance.unwrap_or(trace_tol);
                        report.phase_tolerance = tol;
                        let gap = (phase_sum - t_sched).abs();
                        let residual = gap / t_sched.max(1e-12);
                        report.reconciled_steps += 1;
                        if residual > report.max_phase_residual {
                            report.max_phase_residual = residual;
                            report.max_phase_residual_step = Some(r.step);
                        }
                        if gap > tol * t_sched.max(1e-12) + 1e-12 {
                            out.push(Violation {
                                invariant: "phase_reconciliation",
                                seq: r.seq,
                                step: r.step,
                                detail: format!(
                                    "phase spans sum to {phase_sum:.6e} but the step \
                                     reports a scheduler makespan of {t_sched:.6e}"
                                ),
                            });
                        }
                    }
                }
            }
            "exec.policy" => {
                if let Some(t) = f64_field(r, "phase_tolerance") {
                    trace_tol = t;
                }
            }
            "lb.regression" => last_regression = Some((r.step, r.seq)),
            "lb.enforce" => {
                // Only Observation-state enforces need provenance — the
                // Incremental walk enforces on every probe by design. While
                // a restore resync is pending the state is unknown (the
                // enforce of a replayed step precedes its step.record), so
                // the check waits for the machine to resync.
                if cur_state == "observation" && !resync {
                    let reg_ok = matches!(
                        last_regression,
                        Some((s, q)) if s == r.step && q < r.seq
                    );
                    let anom_ok = matches!(
                        last_anomaly,
                        Some((s, _)) if r.step.saturating_sub(s) <= opts.anomaly_window
                    );
                    if !reg_ok && !anom_ok {
                        out.push(Violation {
                            invariant: "enforce_provenance",
                            seq: r.seq,
                            step: r.step,
                            detail: "observation-state enforce with no regression or \
                                     anomaly signal"
                                .into(),
                        });
                    }
                }
                if let (Some(s), Some((lo, hi))) = (u64_field(r, "s"), s_bounds) {
                    if s < lo || s > hi {
                        out.push(Violation {
                            invariant: "s_bounds",
                            seq: r.seq,
                            step: r.step,
                            detail: format!("enforce at S={s} outside [{lo}, {hi}]"),
                        });
                    }
                }
            }
            "audit.prediction" => {
                // Acted steps knowingly invalidate the forecast; skip them.
                let acted = bool_field(r, "acted").unwrap_or(false);
                if let Some(err) = f64_field(r, "rel_error") {
                    if !acted && err.is_finite() && err > opts.audit_tolerance {
                        out.push(Violation {
                            invariant: "audit_drift",
                            seq: r.seq,
                            step: r.step,
                            detail: format!(
                                "prediction error {err:.3} exceeds tolerance {:.3}",
                                opts.audit_tolerance
                            ),
                        });
                    }
                }
            }
            name if name.starts_with("anomaly.") => last_anomaly = Some((r.step, r.seq)),
            _ => {}
        }
    }
    report.violations = out;
    report
}

/// One step-aligned discrepancy between two runs.
#[derive(Debug, Clone, PartialEq)]
pub struct DiffEntry {
    pub step: u64,
    /// What differs: `"s"`, `"state"`, or `"step_count"`.
    pub kind: &'static str,
    pub a: String,
    pub b: String,
}

impl std::fmt::Display for DiffEntry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "step {}: {} differs (a: {}, b: {})",
            self.step, self.kind, self.a, self.b
        )
    }
}

/// Result of a step-aligned [`diff_traces`].
#[derive(Debug, Clone, Default)]
pub struct TraceDiff {
    pub steps_a: usize,
    pub steps_b: usize,
    /// Structural mismatches (S trajectory / state trajectory / length).
    pub mismatches: Vec<DiffEntry>,
    /// Largest per-step compute-time ratio `max(a/b, b/a)` over aligned
    /// steps (1.0 = identical timing; informational, never a mismatch).
    pub max_time_ratio: f64,
}

impl TraceDiff {
    /// True when the two runs took the same S/state trajectory.
    pub fn is_match(&self) -> bool {
        self.mismatches.is_empty()
    }
}

/// Align two traces on their `step.record` events and compare the balancer
/// trajectory (S, state) step by step; timing differences are summarized as
/// a ratio but never count as mismatches (two runs of the same trajectory
/// on different hardware legitimately differ in time).
pub fn diff_traces(a: &[EventRecord], b: &[EventRecord]) -> TraceDiff {
    let steps = |recs: &[EventRecord]| -> Vec<EventRecord> {
        recs.iter()
            .filter(|r| r.name == "step.record")
            .cloned()
            .collect()
    };
    let sa = steps(a);
    let sb = steps(b);
    let mut diff = TraceDiff {
        steps_a: sa.len(),
        steps_b: sb.len(),
        mismatches: Vec::new(),
        max_time_ratio: 1.0,
    };
    if sa.len() != sb.len() {
        diff.mismatches.push(DiffEntry {
            step: sa.len().min(sb.len()) as u64,
            kind: "step_count",
            a: sa.len().to_string(),
            b: sb.len().to_string(),
        });
    }
    for (ra, rb) in sa.iter().zip(&sb) {
        let step = ra.step;
        match (u64_field(ra, "s"), u64_field(rb, "s")) {
            (Some(x), Some(y)) if x != y => diff.mismatches.push(DiffEntry {
                step,
                kind: "s",
                a: x.to_string(),
                b: y.to_string(),
            }),
            _ => {}
        }
        let state_a = str_field(ra, "state").unwrap_or("?");
        let state_b = str_field(rb, "state").unwrap_or("?");
        if state_a != state_b {
            diff.mismatches.push(DiffEntry {
                step,
                kind: "state",
                a: state_a.to_string(),
                b: state_b.to_string(),
            });
        }
        let compute = |r: &EventRecord| {
            let c = f64_field(r, "t_cpu")
                .unwrap_or(0.0)
                .max(f64_field(r, "t_gpu").unwrap_or(0.0));
            c.max(0.0)
        };
        let (ca, cb) = (compute(ra), compute(rb));
        if ca > 0.0 && cb > 0.0 {
            diff.max_time_ratio = diff.max_time_ratio.max((ca / cb).max(cb / ca));
        }
    }
    diff
}

#[cfg(test)]
mod tests {
    use super::*;
    use telemetry::{intern, RecordKind};

    /// Hand-build a minimal legal trace: config, two observation steps.
    fn event(seq: u64, step: u64, name: &str, fields: Vec<(&'static str, Value)>) -> EventRecord {
        EventRecord {
            seq,
            step,
            kind: RecordKind::Event,
            name: intern(name),
            dur_s: None,
            fields,
        }
    }

    fn config(seq: u64) -> EventRecord {
        event(
            seq,
            0,
            "run.config",
            vec![
                ("strategy", Value::Str("full".into())),
                ("s_min", Value::U64(8)),
                ("s_max", Value::U64(4096)),
            ],
        )
    }

    fn step_record(seq: u64, step: u64, s: u64, state: &str, online: u64) -> EventRecord {
        event(
            seq,
            step,
            "step.record",
            vec![
                ("s", Value::U64(s)),
                ("state", Value::Str(state.into())),
                ("t_cpu", Value::F64(1.0)),
                ("t_gpu", Value::F64(1.1)),
                ("t_lb", Value::F64(0.0)),
                ("acted", Value::Bool(false)),
                ("online_gpus", Value::U64(online)),
            ],
        )
    }

    fn transition(seq: u64, step: u64, from: &str, to: &str, cause: &str, s: u64) -> EventRecord {
        event(
            seq,
            step,
            "lb.transition",
            vec![
                ("from", Value::Str(from.into())),
                ("to", Value::Str(to.into())),
                ("cause", Value::Str(cause.into())),
                ("s", Value::U64(s)),
            ],
        )
    }

    #[test]
    fn clean_synthetic_trace_validates() {
        let recs = vec![
            config(0),
            transition(1, 0, "search", "incremental", "search_settled", 64),
            step_record(2, 0, 64, "search", 2),
            transition(
                3,
                1,
                "incremental",
                "observation",
                "incremental_settled",
                74,
            ),
            step_record(4, 1, 64, "incremental", 2),
            step_record(5, 2, 74, "observation", 2),
        ];
        let v = validate_trace(&recs, &ValidateOptions::default());
        assert!(v.is_empty(), "unexpected violations: {v:?}");
    }

    #[test]
    fn illegal_edge_is_named() {
        let recs = vec![
            config(0),
            transition(1, 0, "search", "frozen", "repair_failed", 64),
            step_record(2, 0, 64, "search", 2),
        ];
        let v = validate_trace(&recs, &ValidateOptions::default());
        assert!(
            v.iter().any(|x| x.invariant == "transition_legality"),
            "{v:?}"
        );
    }

    #[test]
    fn recovery_without_evidence_is_flagged() {
        let recs = vec![
            config(0),
            step_record(1, 0, 64, "search", 2),
            // Recovery claimed, but no lb.recovery marker and the online
            // count never changed.
            transition(2, 1, "search", "recovery", "device_count_changed", 64),
            step_record(3, 1, 64, "search", 2),
        ];
        let v = validate_trace(&recs, &ValidateOptions::default());
        let hits: Vec<_> = v
            .iter()
            .filter(|x| x.invariant == "recovery_cause")
            .collect();
        assert_eq!(hits.len(), 2, "marker + count evidence both missing: {v:?}");
    }

    #[test]
    fn legal_recovery_passes() {
        let recs = vec![
            config(0),
            step_record(1, 0, 64, "search", 2),
            event(
                2,
                1,
                "lb.recovery",
                vec![("online", Value::U64(1)), ("s", Value::U64(64))],
            ),
            transition(3, 1, "search", "recovery", "device_count_changed", 64),
            step_record(4, 1, 64, "search", 1),
        ];
        let v = validate_trace(&recs, &ValidateOptions::default());
        assert!(v.is_empty(), "unexpected violations: {v:?}");
    }

    #[test]
    fn s_out_of_bounds_is_flagged() {
        let recs = vec![config(0), step_record(1, 0, 5000, "search", 2)];
        let v = validate_trace(&recs, &ValidateOptions::default());
        assert!(v.iter().any(|x| x.invariant == "s_bounds"), "{v:?}");
    }

    #[test]
    fn orphan_observation_enforce_is_flagged() {
        let mut recs = vec![
            config(0),
            transition(1, 0, "search", "incremental", "search_settled", 64),
            step_record(2, 0, 64, "search", 2),
            transition(
                3,
                1,
                "incremental",
                "observation",
                "incremental_settled",
                64,
            ),
            step_record(4, 1, 64, "incremental", 2),
            // Enforce with no lb.regression before it.
            event(
                5,
                2,
                "lb.enforce",
                vec![
                    ("collapses", Value::U64(1)),
                    ("pushdowns", Value::U64(0)),
                    ("patched", Value::Bool(true)),
                    ("s", Value::U64(64)),
                ],
            ),
            step_record(6, 2, 64, "observation", 2),
        ];
        let v = validate_trace(&recs, &ValidateOptions::default());
        assert!(
            v.iter().any(|x| x.invariant == "enforce_provenance"),
            "{v:?}"
        );
        // Adding the regression signal ahead of it makes the trace legal.
        recs.insert(
            5,
            event(
                4,
                2,
                "lb.regression",
                vec![
                    ("compute", Value::F64(1.3)),
                    ("limit", Value::F64(1.2)),
                    ("best", Value::F64(1.1)),
                ],
            ),
        );
        // Re-sequence to keep seq monotone after the insert.
        for (i, r) in recs.iter_mut().enumerate() {
            r.seq = i as u64;
        }
        let v = validate_trace(&recs, &ValidateOptions::default());
        assert!(v.is_empty(), "unexpected violations: {v:?}");
    }

    #[test]
    fn audit_drift_and_seq_violations() {
        let recs = vec![
            config(0),
            event(
                1,
                0,
                "audit.prediction",
                vec![
                    ("pred_total", Value::F64(50.0)),
                    ("actual_total", Value::F64(1.0)),
                    ("rel_error", Value::F64(49.0)),
                    ("acted", Value::Bool(false)),
                ],
            ),
            // seq goes backwards here:
            step_record(1, 0, 64, "search", 2),
        ];
        let v = validate_trace(&recs, &ValidateOptions::default());
        assert!(v.iter().any(|x| x.invariant == "audit_drift"), "{v:?}");
        assert!(v.iter().any(|x| x.invariant == "seq_monotone"), "{v:?}");
    }

    #[test]
    fn missing_config_is_flagged() {
        let recs = vec![step_record(0, 0, 64, "search", 2)];
        let v = validate_trace(&recs, &ValidateOptions::default());
        assert!(v.iter().any(|x| x.invariant == "missing_config"), "{v:?}");
        // An empty trace, by contrast, is trivially legal.
        assert!(validate_trace(&[], &ValidateOptions::default()).is_empty());
    }

    fn phase_span(seq: u64, step: u64, name: &'static str, dur: f64) -> EventRecord {
        EventRecord {
            seq,
            step,
            kind: RecordKind::Span,
            name: intern(name),
            dur_s: Some(dur),
            fields: vec![("ops", Value::U64(10))],
        }
    }

    fn step_record_with_sched(
        seq: u64,
        step: u64,
        s: u64,
        state: &str,
        t_sched: f64,
    ) -> EventRecord {
        let mut r = step_record(seq, step, s, state, 2);
        r.fields.push(("t_sched", Value::F64(t_sched)));
        r
    }

    #[test]
    fn reconciled_phase_spans_pass() {
        let recs = vec![
            config(0),
            phase_span(1, 0, "phase.p2m", 0.1),
            phase_span(2, 0, "phase.m2m", 0.2),
            phase_span(3, 0, "phase.m2l", 0.5),
            phase_span(4, 0, "phase.l2l", 0.1),
            phase_span(5, 0, "phase.l2p", 0.1),
            step_record_with_sched(6, 0, 64, "search", 1.0),
        ];
        let v = validate_trace(&recs, &ValidateOptions::default());
        assert!(v.is_empty(), "unexpected violations: {v:?}");
    }

    #[test]
    fn corrupted_phase_span_is_flagged() {
        // The M2L span was zeroed (dominant phase lost): the sum no longer
        // covers the reported makespan.
        let recs = vec![
            config(0),
            phase_span(1, 0, "phase.p2m", 0.1),
            phase_span(2, 0, "phase.m2m", 0.2),
            phase_span(3, 0, "phase.m2l", 0.0),
            phase_span(4, 0, "phase.l2l", 0.1),
            phase_span(5, 0, "phase.l2p", 0.1),
            step_record_with_sched(6, 0, 64, "search", 1.0),
        ];
        let v = validate_trace(&recs, &ValidateOptions::default());
        assert!(
            v.iter().any(|x| x.invariant == "phase_reconciliation"),
            "{v:?}"
        );
    }

    #[test]
    fn gpu_p2p_span_stays_out_of_cpu_reconciliation() {
        // phase.p2p with on_gpu=true is device time; including it would blow
        // the CPU-side sum. A trace where it is correctly excluded passes.
        let mut p2p = phase_span(5, 0, "phase.p2p", 3.0);
        p2p.fields.push(("on_gpu", Value::Bool(true)));
        let recs = vec![
            config(0),
            phase_span(1, 0, "phase.p2m", 0.2),
            phase_span(2, 0, "phase.m2m", 0.2),
            phase_span(3, 0, "phase.m2l", 0.4),
            phase_span(4, 0, "phase.l2l", 0.2),
            p2p,
            step_record_with_sched(6, 0, 64, "search", 1.0),
        ];
        let v = validate_trace(&recs, &ValidateOptions::default());
        assert!(v.is_empty(), "unexpected violations: {v:?}");
    }

    #[test]
    fn traces_without_t_sched_skip_reconciliation() {
        // Pre-DAG traces have phase spans but no t_sched anchor: skipped,
        // not flagged (backwards compatibility).
        let recs = vec![
            config(0),
            phase_span(1, 0, "phase.m2l", 123.0),
            step_record(2, 0, 64, "search", 2),
        ];
        let v = validate_trace(&recs, &ValidateOptions::default());
        assert!(v.is_empty(), "unexpected violations: {v:?}");
    }

    #[test]
    fn report_carries_realized_residual() {
        // Two reconciled steps: 10% residual on step 0, 2% on step 1. Both
        // inside the default tolerance, but the report says how close.
        let recs = vec![
            config(0),
            phase_span(1, 0, "phase.m2l", 0.9),
            step_record_with_sched(2, 0, 64, "search", 1.0),
            phase_span(3, 1, "phase.m2l", 0.98),
            step_record_with_sched(4, 1, 64, "search", 1.0),
        ];
        let rep = validate_trace_report(&recs, &ValidateOptions::default());
        assert!(rep.violations.is_empty(), "{:?}", rep.violations);
        assert_eq!(rep.reconciled_steps, 2);
        assert!((rep.max_phase_residual - 0.1).abs() < 1e-12);
        assert_eq!(rep.max_phase_residual_step, Some(0));
        assert_eq!(rep.phase_tolerance, crate::exec::DEFAULT_PHASE_TOLERANCE);
    }

    #[test]
    fn trace_recorded_tolerance_is_honored() {
        // The run recorded a tight 5% tolerance in its header; a 10%
        // residual that the default 20% would admit must now be flagged.
        let mut cfg = config(0);
        cfg.fields.push(("phase_tolerance", Value::F64(0.05)));
        let recs = vec![
            cfg,
            phase_span(1, 0, "phase.m2l", 0.9),
            step_record_with_sched(2, 0, 64, "search", 1.0),
        ];
        let rep = validate_trace_report(&recs, &ValidateOptions::default());
        assert!(
            rep.violations
                .iter()
                .any(|x| x.invariant == "phase_reconciliation"),
            "{:?}",
            rep.violations
        );
        assert_eq!(rep.phase_tolerance, 0.05);
    }

    #[test]
    fn exec_policy_event_refreshes_tolerance() {
        // A mid-run policy change loosens the tolerance before the step.
        let mut cfg = config(0);
        cfg.fields.push(("phase_tolerance", Value::F64(0.05)));
        let recs = vec![
            cfg,
            event(
                1,
                0,
                "exec.policy",
                vec![
                    ("mode", Value::Str("dag".into())),
                    ("phase_tolerance", Value::F64(0.5)),
                ],
            ),
            phase_span(2, 0, "phase.m2l", 0.9),
            step_record_with_sched(3, 0, 64, "search", 1.0),
        ];
        let rep = validate_trace_report(&recs, &ValidateOptions::default());
        assert!(rep.violations.is_empty(), "{:?}", rep.violations);
        assert_eq!(rep.phase_tolerance, 0.5);
    }

    #[test]
    fn caller_override_beats_trace_tolerance() {
        // Header says 50%, the caller (CLI --phase-tol) demands 1%.
        let mut cfg = config(0);
        cfg.fields.push(("phase_tolerance", Value::F64(0.5)));
        let recs = vec![
            cfg,
            phase_span(1, 0, "phase.m2l", 0.9),
            step_record_with_sched(2, 0, 64, "search", 1.0),
        ];
        let opts = ValidateOptions {
            phase_tolerance: Some(0.01),
            ..ValidateOptions::default()
        };
        let rep = validate_trace_report(&recs, &opts);
        assert!(
            rep.violations
                .iter()
                .any(|x| x.invariant == "phase_reconciliation"),
            "{:?}",
            rep.violations
        );
        assert_eq!(rep.phase_tolerance, 0.01);
    }

    #[test]
    fn diff_matches_identical_and_spots_divergence() {
        let a = vec![
            config(0),
            step_record(1, 0, 64, "search", 2),
            step_record(2, 1, 80, "incremental", 2),
        ];
        let d = diff_traces(&a, &a);
        assert!(d.is_match());
        assert_eq!(d.max_time_ratio, 1.0);

        let mut b = a.clone();
        b[2] = step_record(2, 1, 96, "observation", 2);
        let d = diff_traces(&a, &b);
        assert!(!d.is_match());
        let kinds: Vec<_> = d.mismatches.iter().map(|m| m.kind).collect();
        assert!(
            kinds.contains(&"s") && kinds.contains(&"state"),
            "{kinds:?}"
        );

        let c = a[..2].to_vec();
        let d = diff_traces(&a, &c);
        assert!(d.mismatches.iter().any(|m| m.kind == "step_count"));
    }
}
