//! Memory-observatory properties, run with the counting allocator installed
//! (`cargo test --features memprof --test memprof`):
//!
//! * **zero-alloc steady state** — once a tree's rebin scratch and a plan's
//!   refresh scratch are warm, `Octree::rebin` performs no allocations at
//!   all, and `IncrementalLists::refresh_counts` performs none on the
//!   Clean/Patched paths (the Rebuilt fallback legitimately allocates);
//! * **structural/allocator agreement** — the `heap_bytes()` walks over
//!   bodies + octree + plan land within 15% of what the allocator says is
//!   actually live for those structures.
//!
//! Without the `memprof` feature the counting hooks compile to no-ops and
//! `memprof::counting()` stays false, so both tests pass vacuously. The
//! allocator counters are process-global, so every test here serializes on
//! one lock.

use std::sync::Mutex;

use geom::Vec3;
use octree::{build_adaptive, BuildParams, IncrementalLists, Mac, PlanRefresh};
use proptest::prelude::*;
use telemetry::memprof;

/// The hooks only count once the wrapper is the global allocator, which a
/// test binary has to opt into itself.
#[cfg(feature = "memprof")]
#[global_allocator]
static ALLOC: telemetry::CountingAlloc = telemetry::CountingAlloc;

/// Allocator counters are process-global; concurrent test bodies would
/// bleed into each other's deltas.
static LOCK: Mutex<()> = Mutex::new(());

fn plummer_points(n: usize, seed: u64) -> (Vec<Vec3>, Vec<f64>) {
    let b = nbody::plummer(n, 1.0, 1.0, seed);
    (b.pos, b.mass)
}

/// Scope-tagged allocation counts for the two gated scopes.
fn gate_counts() -> (u64, u64) {
    let rebin = memprof::scope_stats("rebin").unwrap_or_default();
    let refresh = memprof::scope_stats("plan.refresh").unwrap_or_default();
    (rebin.allocs, refresh.allocs)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Warm tree + warm plan, then several steps of mild uniform
    /// contraction: rebin must never allocate, and any refresh that stays
    /// on the Clean/Patched path (no emptiness flip) must not either.
    #[test]
    fn steady_state_is_allocation_free(
        seed in 0u64..1000,
        n in 600usize..2000,
        factor in 0.9990f64..0.9999,
        steps in 2usize..6,
    ) {
        let _g = LOCK.lock().unwrap_or_else(|e| e.into_inner());
        if !memprof::counting() {
            return Ok(()); // feature off: nothing to measure
        }
        let (mut pos, _) = plummer_points(n, seed);
        let mut tree = build_adaptive(&pos, BuildParams::with_s(48));
        let mut plan = IncrementalLists::build(&tree, Mac::default());

        // Warmup pays the one-time scratch allocations: rebin pair/stack
        // buffers, the refresh walk stack, and the dirty list's hard bound.
        for p in pos.iter_mut() {
            *p *= factor;
        }
        tree.rebin(&pos);
        let _ = plan.refresh_counts(&tree);

        // A Rebuilt outcome regenerates the reverse-P2P lists, which moves
        // the dirty list's reserve bound — the refresh right after it may
        // re-warm once, so its allocation check is skipped for one step.
        let mut rewarm = false;
        for _ in 0..steps {
            for p in pos.iter_mut() {
                *p *= factor;
            }
            let (rebin0, refresh0) = gate_counts();
            tree.rebin(&pos);
            let outcome = plan.refresh_counts(&tree);
            let (rebin1, refresh1) = gate_counts();
            prop_assert_eq!(rebin1, rebin0, "rebin allocated while warm");
            if outcome == PlanRefresh::Rebuilt {
                rewarm = true;
            } else {
                if !rewarm {
                    prop_assert_eq!(
                        refresh1, refresh0,
                        "{:?} refresh allocated while warm", outcome
                    );
                }
                rewarm = false;
            }
        }
    }
}

/// `heap_bytes()` is a structural estimate (capacity-granular Vec walks);
/// the allocator's live-byte delta around construction is ground truth.
/// They must agree within 15% for the paper-scale working set.
#[test]
fn structural_heap_bytes_tracks_allocator_live_bytes() {
    let _g = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    if !memprof::counting() {
        return; // feature off: nothing to measure
    }
    let live0 = memprof::global().live_bytes;
    let b = nbody::plummer(3000, 1.0, 1.0, 11);
    let tree = build_adaptive(&b.pos, BuildParams::with_s(48));
    let plan = IncrementalLists::build(&tree, Mac::default());
    let live1 = memprof::global().live_bytes;

    let measured = (live1 - live0) as f64;
    let structural = (b.heap_bytes() + tree.heap_bytes() + plan.heap_bytes()) as f64;
    std::hint::black_box((&b, &tree, &plan));

    let ratio = structural / measured;
    assert!(
        (0.85..=1.15).contains(&ratio),
        "structural {structural} B vs allocator-live {measured} B (ratio {ratio:.3}): \
         the heap_bytes() walks drifted from what is actually allocated"
    );
}
