//! Property-based tests of the workspace's core invariants: decomposition
//! structure under arbitrary maintenance sequences, interaction-list
//! coverage, GPU partitioning, scheduler bounds, and cost-model
//! consistency.

// `afmm::Strategy` (the load-balancing strategy enum) collides with
// proptest's `Strategy` trait, so import the workspace types explicitly.
use afmm_repro::prelude::{
    build_adaptive, BuildParams, CostModel, FmmEngine, FmmParams, GravityKernel, HeteroNode, Mac,
    Octree, SimConfig, TaskGraph, Vec3,
};
use gpu_sim::partition_by_interactions;
use octree::{count_ops, dual_traversal, NodeId};
use proptest::prelude::*;

fn arb_points(max_n: usize) -> impl Strategy<Value = Vec<Vec3>> {
    prop::collection::vec(
        (-1.0f64..1.0, -1.0f64..1.0, -1.0f64..1.0).prop_map(|(x, y, z)| Vec3::new(x, y, z)),
        8..max_n,
    )
}

/// A random maintenance op to apply to a tree.
#[derive(Clone, Debug)]
enum TreeOp {
    Collapse(usize),
    PushDown(usize),
    EnforceWithS(usize),
    MoveAndRebin(u64),
}

fn arb_ops() -> impl Strategy<Value = Vec<TreeOp>> {
    prop::collection::vec(
        prop_oneof![
            (0usize..64).prop_map(TreeOp::Collapse),
            (0usize..64).prop_map(TreeOp::PushDown),
            (4usize..128).prop_map(TreeOp::EnforceWithS),
            any::<u64>().prop_map(TreeOp::MoveAndRebin),
        ],
        0..12,
    )
}

fn jitter(pos: &mut [Vec3], seed: u64) {
    use rand::prelude::*;
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    for p in pos {
        *p += Vec3::new(
            rng.random_range(-0.05..0.05),
            rng.random_range(-0.05..0.05),
            rng.random_range(-0.05..0.05),
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Whatever maintenance sequence runs, the tree keeps its structural
    /// invariants and every body stays in exactly one visible leaf.
    #[test]
    fn tree_invariants_survive_arbitrary_maintenance(
        pts in arb_points(300),
        s in 4usize..64,
        ops in arb_ops(),
    ) {
        let mut pos = pts;
        let mut tree = build_adaptive(&pos, BuildParams::with_s(s));
        for op in ops {
            match op {
                TreeOp::Collapse(k) => {
                    let nodes = tree.visible_nodes();
                    let id = nodes[k % nodes.len()];
                    tree.collapse(id);
                }
                TreeOp::PushDown(k) => {
                    let leaves = tree.visible_leaves();
                    let id = leaves[k % leaves.len()];
                    tree.push_down(id);
                }
                TreeOp::EnforceWithS(new_s) => {
                    tree.set_s_value(new_s);
                    tree.enforce_s();
                }
                TreeOp::MoveAndRebin(seed) => {
                    jitter(&mut pos, seed);
                    tree.rebin(&pos);
                }
            }
            prop_assert!(tree.check_invariants().is_ok(), "{:?}", tree.check_invariants());
            let covered: usize = tree
                .visible_leaves()
                .iter()
                .map(|&l| tree.node(l).count())
                .sum();
            prop_assert_eq!(covered, pos.len());
        }
    }

    /// The dual traversal covers every ordered body pair exactly once
    /// (P2P xor an M2L ancestor pair) on any tree the maintenance ops can
    /// produce.
    #[test]
    fn traversal_exactly_covers_all_pairs_after_maintenance(
        pts in arb_points(80),
        s in 2usize..24,
        ops in arb_ops(),
        theta in 0.35f64..0.95,
    ) {
        let mut pos = pts;
        let n = pos.len();
        let mut tree = build_adaptive(&pos, BuildParams::with_s(s));
        for op in ops {
            match op {
                TreeOp::Collapse(k) => {
                    let nodes = tree.visible_nodes();
                    tree.collapse(nodes[k % nodes.len()]);
                }
                TreeOp::PushDown(k) => {
                    let leaves = tree.visible_leaves();
                    tree.push_down(leaves[k % leaves.len()]);
                }
                TreeOp::EnforceWithS(new_s) => {
                    tree.set_s_value(new_s);
                    tree.enforce_s();
                }
                TreeOp::MoveAndRebin(seed) => {
                    jitter(&mut pos, seed);
                    tree.rebin(&pos);
                }
            }
        }
        let lists = dual_traversal(&tree, Mac::new(theta));
        let mut cover = vec![0u32; n * n];
        for a in 0..tree.num_nodes() as NodeId {
            let ra = tree.node(a).range();
            for &b in &lists.m2l[a as usize] {
                for i in ra.clone() {
                    for j in tree.node(b).range() {
                        cover[tree.order()[i] as usize * n + tree.order()[j] as usize] += 1;
                    }
                }
            }
            for &b in &lists.p2p[a as usize] {
                for i in ra.clone() {
                    for j in tree.node(b).range() {
                        let (bi, bj) = (tree.order()[i] as usize, tree.order()[j] as usize);
                        if !(a == b && bi == bj) {
                            cover[bi * n + bj] += 1;
                        }
                    }
                }
            }
        }
        for i in 0..n {
            for j in 0..n {
                prop_assert_eq!(cover[i * n + j], u32::from(i != j), "pair ({}, {})", i, j);
            }
        }
    }

    /// Collapse of a twig (all-leaf children) followed by PushDown restores
    /// the visible structure exactly.
    #[test]
    fn collapse_pushdown_roundtrip_on_twigs(pts in arb_points(400), s in 4usize..32) {
        let mut tree = build_adaptive(&pts, BuildParams::with_s(s));
        let twigs: Vec<NodeId> = tree
            .visible_nodes()
            .into_iter()
            .filter(|&id| {
                id != Octree::ROOT
                    && !tree.node(id).is_leaf()
                    && tree.visible_children(id).all(|c| tree.node(c).is_leaf())
            })
            .collect();
        let before = tree.visible_nodes();
        for &id in &twigs {
            prop_assert!(tree.collapse(id));
        }
        for &id in &twigs {
            prop_assert!(tree.push_down(id));
        }
        prop_assert_eq!(before, tree.visible_nodes());
        prop_assert!(tree.check_invariants().is_ok());
    }

    /// The paper's GPU partition: every job assigned exactly once, order
    /// preserved, and no device exceeds the ideal share by more than its
    /// largest single job.
    #[test]
    fn gpu_partition_properties(
        weights in prop::collection::vec(0u64..10_000, 1..200),
        n_gpus in 1usize..8,
    ) {
        let groups = partition_by_interactions(&weights, n_gpus);
        prop_assert_eq!(groups.len(), n_gpus);
        let flat: Vec<usize> = groups.concat();
        let expect: Vec<usize> = (0..weights.len()).collect();
        prop_assert_eq!(flat, expect, "partition must preserve order and cover once");
        let total: u64 = weights.iter().sum();
        let share = total.div_ceil(n_gpus as u64).max(1);
        for g in &groups {
            let sum: u64 = g.iter().map(|&i| weights[i]).sum();
            let max_item = g.iter().map(|&i| weights[i]).max().unwrap_or(0);
            prop_assert!(sum <= share + max_item);
        }
    }

    /// Greedy-schedule makespan respects Graham's bounds for arbitrary
    /// fork-ish DAGs.
    #[test]
    fn scheduler_respects_graham_bounds(
        costs in prop::collection::vec(0.1f64..50.0, 1..120),
        cores in 1usize..16,
        fan in 1usize..4,
    ) {
        let mut g = TaskGraph::new();
        let mut ids = Vec::new();
        for (i, &c) in costs.iter().enumerate() {
            let deps = if i == 0 {
                vec![]
            } else {
                (1..=fan.min(i)).map(|k| ids[i - k]).filter(|_| i % (fan + 1) != 0).collect()
            };
            ids.push(g.add(c, deps));
        }
        let r = sched_sim::simulate(&g, &SimConfig::ideal(cores, 1.0));
        let span = sched_sim::critical_path(&g);
        let work = g.total_work();
        prop_assert!(r.makespan >= span - 1e-9);
        prop_assert!(r.makespan >= work / cores as f64 - 1e-9);
        prop_assert!(r.makespan <= span + work / cores as f64 + 1e-9);
    }

    /// Cost-model prediction on the very tree it observed equals the
    /// realized virtual times (GPU exactly, CPU within the overhead slack).
    #[test]
    fn prediction_self_consistency(pts in arb_points(600), s in 8usize..128, gpus in 1usize..5) {
        let node = HeteroNode::system_a(10, gpus);
        let mut e = FmmEngine::new(GravityKernel::default(), FmmParams::default(), &pts, s);
        let counts = e.refresh_lists();
        let flops = fmm_math::Kernel::op_flops(&e.kernel, e.expansion_ops());
        let timing = afmm::time_step(e.tree(), e.lists(), &flops, &node).unwrap();
        let mut model = CostModel::new();
        model.observe(&counts, &timing, &flops, &node);
        let pred = model.predict(&counts, &node);
        prop_assert!((pred.t_gpu - timing.t_gpu).abs() <= 1e-12 * timing.t_gpu.max(1e-30));
        if timing.t_cpu > 0.0 {
            prop_assert!((pred.t_cpu - timing.t_cpu).abs() / timing.t_cpu < 0.10,
                "cpu prediction off: {} vs {}", pred.t_cpu, timing.t_cpu);
        }
    }

    /// Op counts recomputed after maintenance match a from-scratch count on
    /// the same tree (the basis of "predict without solving").
    #[test]
    fn counts_consistent_after_maintenance(pts in arb_points(300), s in 4usize..64, ops in arb_ops()) {
        let mut pos = pts;
        let mut tree = build_adaptive(&pos, BuildParams::with_s(s));
        for op in ops {
            match op {
                TreeOp::Collapse(k) => {
                    let nodes = tree.visible_nodes();
                    tree.collapse(nodes[k % nodes.len()]);
                }
                TreeOp::PushDown(k) => {
                    let leaves = tree.visible_leaves();
                    tree.push_down(leaves[k % leaves.len()]);
                }
                TreeOp::EnforceWithS(new_s) => {
                    tree.set_s_value(new_s);
                    tree.enforce_s();
                }
                TreeOp::MoveAndRebin(seed) => {
                    jitter(&mut pos, seed);
                    tree.rebin(&pos);
                }
            }
        }
        let mac = Mac::new(0.6);
        let c1 = count_ops(&tree, &dual_traversal(&tree, mac));
        let c2 = count_ops(&tree, &dual_traversal(&tree, mac));
        prop_assert_eq!(c1, c2);
        prop_assert_eq!(c1.p2m_bodies, pos.len() as u64);
        prop_assert_eq!(c1.l2p_bodies, pos.len() as u64);
        prop_assert_eq!(c1.m2m_ops, c1.l2l_ops);
    }
}
