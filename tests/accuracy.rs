//! Cross-crate accuracy tests: the full AFMM pipeline (octree, expansions,
//! interaction lists, near field) against direct summation, for both of
//! the paper's kernels, across expansion orders, MAC strictness, and
//! decomposition shapes.

use afmm_repro::prelude::*;
use fmm_math::Kernel;

fn rel_err(fmm: &[Vec3], direct: &[Vec3]) -> f64 {
    let num: f64 = fmm
        .iter()
        .zip(direct)
        .map(|(a, b)| (*a - *b).norm_sq())
        .sum();
    let den: f64 = direct.iter().map(|v| v.norm_sq()).sum();
    (num / den).sqrt()
}

fn gravity_direct(bodies: &nbody::Bodies) -> Vec<Vec3> {
    nbody::direct_gravity(bodies, 1.0, 0.0)
}

#[test]
fn gravity_accuracy_improves_with_order() {
    let b = nbody::plummer(500, 1.0, 1.0, 1001);
    let direct = gravity_direct(&b);
    let mut last = f64::INFINITY;
    for order in [2usize, 4, 6, 8] {
        let params = FmmParams {
            order,
            mac: Mac::new(0.5),
            max_level: 21,
        };
        let mut e = FmmEngine::new(GravityKernel::default(), params, &b.pos, 20);
        let err = rel_err(&e.solve(&b.pos, &b.mass).field, &direct);
        assert!(err < last, "p={order}: {err} !< {last}");
        last = err;
    }
    assert!(last < 1e-6, "p=8 error {last}");
}

#[test]
fn gravity_accuracy_improves_with_stricter_mac() {
    let b = nbody::plummer(500, 1.0, 1.0, 1002);
    let direct = gravity_direct(&b);
    let mut errs = Vec::new();
    for theta in [0.9f64, 0.6, 0.35] {
        let params = FmmParams {
            order: 4,
            mac: Mac::new(theta),
            max_level: 21,
        };
        let mut e = FmmEngine::new(GravityKernel::default(), params, &b.pos, 16);
        errs.push(rel_err(&e.solve(&b.pos, &b.mass).field, &direct));
    }
    assert!(
        errs[2] < errs[0],
        "stricter MAC must be more accurate: {errs:?}"
    );
    assert!(errs[2] < 1e-4);
}

#[test]
fn potentials_match_direct_sum() {
    let b = nbody::plummer(300, 1.0, 1.0, 1003);
    let params = FmmParams {
        order: 6,
        mac: Mac::new(0.5),
        max_level: 21,
    };
    let mut e = FmmEngine::new(GravityKernel::default(), params, &b.pos, 24);
    let sol = e.solve(&b.pos, &b.mass);
    for i in (0..b.len()).step_by(17) {
        let mut exact = 0.0;
        for j in 0..b.len() {
            if i != j {
                exact += b.mass[j] / b.pos[i].dist(b.pos[j]);
            }
        }
        let rel = (sol.pot[i] - exact).abs() / exact.abs();
        assert!(rel < 1e-4, "potential at body {i}: {rel}");
    }
}

#[test]
fn stokeslet_velocities_match_direct() {
    let pts = nbody::uniform_cube(400, 1.0, 1004);
    let f = nbody::random_unit_forces(400, 1005);
    let kernel = StokesletKernel::new(1e-3, 2.0);
    let mut dpot = vec![0.0; 400];
    let mut du = vec![Vec3::ZERO; 400];
    kernel.p2p(&pts.pos, &mut dpot, &mut du, &pts.pos, &f, true);

    let params = FmmParams {
        order: 6,
        mac: Mac::new(0.5),
        max_level: 21,
    };
    let mut e = FmmEngine::new(kernel, params, &pts.pos, 24);
    let err = rel_err(&e.solve(&pts.pos, &f).field, &du);
    assert!(err < 1e-3, "stokeslet error {err}");
}

#[test]
fn uniform_decomposition_agrees_with_adaptive() {
    // Same physics through the classic fixed-depth FMM decomposition: build
    // a uniform tree, drive the same pipeline, compare fields.
    let b = nbody::uniform_cube(600, 1.0, 1006);
    let params = FmmParams {
        order: 6,
        mac: Mac::new(0.5),
        max_level: 21,
    };
    let mut adaptive = FmmEngine::new(GravityKernel::default(), params, &b.pos, 16);
    let sa = adaptive.solve(&b.pos, &b.mass);
    let direct = gravity_direct(&b);
    assert!(rel_err(&sa.field, &direct) < 1e-4);
    // The adaptive engine with enormous S degenerates to a shallow tree;
    // with S = 1 it refines everywhere (uniform-like on uniform data). All
    // must agree.
    let mut fine = FmmEngine::new(GravityKernel::default(), params, &b.pos, 4);
    let sf = fine.solve(&b.pos, &b.mass);
    assert!(rel_err(&sf.field, &sa.field) < 1e-4);
}

#[test]
fn clustered_distribution_no_accuracy_loss() {
    // The adaptive FMM's raison d'être: accuracy must hold when density
    // varies by orders of magnitude.
    let mut b = nbody::plummer(300, 1.0, 1.0, 1007);
    // Embed a very tight knot.
    for i in 0..100 {
        let p = Vec3::new(3.0, 3.0, 3.0) + Vec3::splat(1e-4 * i as f64);
        b.push(p, Vec3::ZERO, 0.5);
    }
    let direct = gravity_direct(&b);
    let params = FmmParams {
        order: 6,
        mac: Mac::new(0.5),
        max_level: 21,
    };
    let mut e = FmmEngine::new(GravityKernel::default(), params, &b.pos, 16);
    let err = rel_err(&e.solve(&b.pos, &b.mass).field, &direct);
    assert!(err < 1e-4, "clustered error {err}");
}

#[test]
fn solution_invariant_under_tree_maintenance() {
    // enforce_s / collapse / push_down / rebin must never change the answer
    // beyond expansion accuracy.
    let b = nbody::plummer(400, 1.0, 1.0, 1008);
    let params = FmmParams {
        order: 6,
        mac: Mac::new(0.5),
        max_level: 21,
    };
    let mut e = FmmEngine::new(GravityKernel::default(), params, &b.pos, 32);
    let base = e.solve(&b.pos, &b.mass);
    e.tree_mut().set_s_value(12);
    e.tree_mut().enforce_s();
    let after_enforce = e.solve(&b.pos, &b.mass);
    assert!(rel_err(&after_enforce.field, &base.field) < 1e-4);
    e.rebin(&b.pos);
    let after_rebin = e.solve(&b.pos, &b.mass);
    assert_eq!(
        after_rebin.field, after_enforce.field,
        "rebin of unmoved bodies is a no-op"
    );
}
