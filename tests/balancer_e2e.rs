//! End-to-end behaviour of the load-balancing machinery across crates:
//! search convergence, strategy separation, overhead accounting, and
//! whole-simulation determinism.

use afmm_repro::prelude::*;
use fmm_math::Kernel;

fn cfg() -> LbConfig {
    LbConfig {
        eps_switch_s: 2e-3,
        ..Default::default()
    }
}

/// One timing-only measurement step (no numeric solve).
fn measure(
    engine: &mut FmmEngine<GravityKernel>,
    model: &mut CostModel,
    node: &HeteroNode,
) -> (f64, f64) {
    let counts = engine.refresh_lists();
    let flops = engine.kernel.op_flops(engine.expansion_ops());
    let t = afmm::time_step(engine.tree(), engine.lists(), &flops, node).unwrap();
    model.observe(&counts, &t, &flops, node);
    (t.t_cpu, t.t_gpu)
}

#[test]
fn full_balancer_reaches_observation_and_stays_quiet_on_static_load() {
    let b = nbody::plummer(8000, 1.0, 1.0, 2001);
    let node = HeteroNode::system_a(10, 2);
    let mut engine = FmmEngine::new(GravityKernel::default(), FmmParams::default(), &b.pos, 64);
    let mut model = CostModel::new();
    let mut lb = LoadBalancer::new(Strategy::Full, cfg());
    let mut lb_total = 0.0;
    let mut compute_total = 0.0;
    for _ in 0..40 {
        let (tc, tg) = measure(&mut engine, &mut model, &node);
        compute_total += tc.max(tg);
        let rep = lb.post_step(&mut engine, &model, &node, &b.pos, tc, tg);
        lb_total += rep.lb_time;
    }
    assert_eq!(lb.state(), LbState::Observation, "static load must settle");
    // Once settled on a static distribution the balancer is nearly free;
    // over the whole run (including search) overhead stays small.
    assert!(
        lb_total < 0.35 * compute_total,
        "LB overhead {lb_total} vs compute {compute_total}"
    );
}

#[test]
fn settled_s_is_near_the_sweep_optimum() {
    // The state machine's operating point must be close to the best the
    // brute-force S sweep can find.
    let b = nbody::plummer(8000, 1.0, 1.0, 2002);
    let node = HeteroNode::system_a(10, 2);
    let mut engine = FmmEngine::new(GravityKernel::default(), FmmParams::default(), &b.pos, 64);
    let mut model = CostModel::new();
    let mut lb = LoadBalancer::new(Strategy::Full, cfg());
    for _ in 0..40 {
        let (tc, tg) = measure(&mut engine, &mut model, &node);
        lb.post_step(&mut engine, &model, &node, &b.pos, tc, tg);
        if lb.state() == LbState::Observation {
            break;
        }
    }
    let (tc, tg) = measure(&mut engine, &mut model, &node);
    let settled = tc.max(tg);

    // Brute-force sweep.
    let flops = engine.kernel.op_flops(engine.expansion_ops());
    let mut best = f64::INFINITY;
    let mut s = 8usize;
    while s <= 4096 {
        engine.rebuild(&b.pos, s);
        engine.refresh_lists();
        let t = afmm::time_step(engine.tree(), engine.lists(), &flops, &node)
            .unwrap()
            .compute();
        best = best.min(t);
        s = (s as f64 * 1.5).ceil() as usize;
    }
    assert!(
        settled <= 1.6 * best,
        "settled compute {settled} too far from sweep optimum {best}"
    );
}

#[test]
fn serial_sweep_matches_paper_protocol() {
    // "The S chosen for this serial run was the S that minimized the time
    // for this single core case."
    let b = nbody::plummer(3000, 1.0, 1.0, 2003);
    let node = HeteroNode::serial();
    let mut engine = FmmEngine::new(GravityKernel::default(), FmmParams::default(), &b.pos, 64);
    let (s, t) = search_best_s_cpu_only(&mut engine, &node, &b.pos, &cfg());
    assert!(t > 0.0 && s >= 8);
    assert_eq!(engine.tree().s_value(), s, "engine left at the optimal S");
}

#[test]
fn gravity_sim_full_run_is_deterministic() {
    let mk = || {
        let b = nbody::plummer(600, 1.0, 1.0, 2004);
        let mut sim = GravitySim::new(
            b,
            1.0,
            0.001,
            0.05,
            FmmParams {
                order: 3,
                ..Default::default()
            },
            HeteroNode::system_a(4, 1),
            Strategy::Full,
            cfg(),
            None,
        );
        for _ in 0..15 {
            sim.step().unwrap();
        }
        (
            sim.positions().to_vec(),
            sim.records()
                .iter()
                .map(|r| (r.s, r.t_cpu, r.t_gpu))
                .collect::<Vec<_>>(),
        )
    };
    let (p1, r1) = mk();
    let (p2, r2) = mk();
    assert_eq!(p1, p2, "trajectories must be bit-identical");
    assert_eq!(r1, r2, "timing series must be bit-identical");
}

#[test]
fn trackers_under_all_strategies_stay_valid() {
    let setup = nbody::collapsing_plummer(3000, 1.0, 2005);
    let node = HeteroNode::system_a(10, 2);
    for strategy in [Strategy::StaticS, Strategy::EnforceOnly, Strategy::Full] {
        let mut tracker = StrategyTracker::new(
            GravityKernel::default(),
            FmmParams::default(),
            node.clone(),
            strategy,
            cfg(),
            &setup.bodies.pos,
            Some((setup.domain_center, setup.domain_half_width)),
        );
        let mut pos = setup.bodies.pos.clone();
        for _ in 0..20 {
            tracker.step(&pos).unwrap();
            // Pull everything toward an off-center clump.
            for p in &mut pos {
                *p = *p + (Vec3::new(6.0, -6.0, 6.0) - *p) * 0.04;
            }
            tracker.engine().tree().check_invariants().unwrap();
        }
        let summary = tracker.summary();
        assert_eq!(summary.steps, 20);
        assert!(summary.total_compute > 0.0);
        assert!(summary.max_lb_step >= 0.0);
    }
}

#[test]
fn fgo_disabled_config_never_runs_fgo() {
    let b = nbody::plummer(5000, 1.0, 1.0, 2006);
    let node = HeteroNode::system_a(10, 2);
    let c = LbConfig {
        use_fgo: false,
        ..cfg()
    };
    let mut engine = FmmEngine::new(GravityKernel::default(), FmmParams::default(), &b.pos, 64);
    let mut model = CostModel::new();
    let mut lb = LoadBalancer::new(Strategy::Full, c);
    for i in 0..30 {
        let (tc, tg) = measure(&mut engine, &mut model, &node);
        // Inject artificial regressions so Observation keeps acting.
        let inflate = if i % 4 == 3 { 3.0 } else { 1.0 };
        let rep = lb.post_step(&mut engine, &model, &node, &b.pos, tc * inflate, tg);
        assert_eq!(rep.fgo_rounds, 0, "FGO must stay off");
    }
}
