//! Checkpoint/restore end-to-end: a run that is killed and restored from a
//! snapshot must continue **bit-identically** to one that never stopped —
//! same S trajectory, same balancer states, same timing floats to the last
//! bit — through rebins, S changes and balancer phase transitions.

use afmm_repro::prelude::*;

const STEPS: usize = 80;
const KILL_AT: usize = 30;

fn tracker(pos: &[Vec3]) -> StrategyTracker<GravityKernel> {
    StrategyTracker::new(
        GravityKernel::default(),
        FmmParams::default(),
        HeteroNode::system_a(10, 2),
        Strategy::Full,
        LbConfig {
            eps_switch_s: 2e-3,
            ..Default::default()
        },
        pos,
        None,
    )
}

/// Deterministic drift: positions as a pure function of the step index.
/// The contraction forces rebins (bodies cross leaf boundaries) while the
/// searching balancer changes S — the two events the snapshot must survive.
fn trajectory(base: &[Vec3], step: usize) -> Vec<Vec3> {
    let f = 0.996_f64.powi(step as i32);
    base.iter().map(|p| *p * f).collect()
}

fn assert_records_bit_identical(a: &[afmm::StepRecord], b: &[afmm::StepRecord]) {
    assert_eq!(a.len(), b.len(), "record counts differ");
    for (x, y) in a.iter().zip(b) {
        assert_eq!(x.step, y.step);
        assert_eq!(x.s, y.s, "step {}: S diverged", x.step);
        assert_eq!(x.state, y.state, "step {}: state diverged", x.step);
        for (name, u, v) in [
            ("t_cpu", x.t_cpu, y.t_cpu),
            ("t_gpu", x.t_gpu, y.t_gpu),
            ("t_lb", x.t_lb, y.t_lb),
            ("gpu_efficiency", x.gpu_efficiency, y.gpu_efficiency),
        ] {
            assert_eq!(
                u.to_bits(),
                v.to_bits(),
                "step {}: {name} diverged ({u:e} vs {v:e})",
                x.step
            );
        }
        assert_eq!(x.p2p_interactions, y.p2p_interactions, "step {}", x.step);
        assert_eq!(x.m2l_ops, y.m2l_ops, "step {}", x.step);
    }
}

/// The tentpole guarantee: checkpoint → kill → restore → continue equals an
/// uninterrupted run, bit for bit, over a trajectory with rebins and S
/// changes on both sides of the kill point.
#[test]
fn restored_run_is_bit_identical_to_uninterrupted() {
    let b = nbody::plummer(3000, 1.0, 1.0, 4242);
    // A dropout after the kill point forces the balancer back into
    // Search — an S change the *restored* run must reproduce, which also
    // proves the fault schedule travels with the snapshot.
    let schedule = || {
        let mut s = FaultSchedule::new();
        s.push(45, FaultEvent::GpuDropout { device: 1 });
        s
    };

    // Run A: uninterrupted.
    let mut a = tracker(&b.pos);
    a.set_fault_schedule(schedule());
    for step in 0..STEPS {
        a.step(&trajectory(&b.pos, step)).unwrap();
    }

    // Run B: same tracker config, killed at KILL_AT and restored.
    let mut b1 = tracker(&b.pos);
    b1.set_fault_schedule(schedule());
    for step in 0..KILL_AT {
        b1.step(&trajectory(&b.pos, step)).unwrap();
    }
    let snapshot = b1.checkpoint(&trajectory(&b.pos, KILL_AT - 1));
    drop(b1); // the "kill"

    let (mut b2, saved_pos) = StrategyTracker::restore(
        GravityKernel::default(),
        HeteroNode::system_a(10, 2),
        &snapshot,
    )
    .expect("restore must succeed");
    // The snapshot hands back the positions it was taken with.
    let expect = trajectory(&b.pos, KILL_AT - 1);
    assert_eq!(saved_pos.len(), expect.len());
    for (p, q) in saved_pos.iter().zip(&expect) {
        assert_eq!(p.x.to_bits(), q.x.to_bits());
        assert_eq!(p.y.to_bits(), q.y.to_bits());
        assert_eq!(p.z.to_bits(), q.z.to_bits());
    }
    assert_eq!(
        b2.records().len(),
        KILL_AT,
        "history travels with the snapshot"
    );
    for step in KILL_AT..STEPS {
        b2.step(&trajectory(&b.pos, step)).unwrap();
    }

    assert_records_bit_identical(a.records(), b2.records());

    // The trajectory actually exercised what it claims: S changed both
    // before and after the kill point.
    let distinct = |r: &[afmm::StepRecord]| {
        let mut s: Vec<usize> = r.iter().map(|x| x.s).collect();
        s.dedup();
        s.len()
    };
    assert!(
        distinct(&a.records()[..KILL_AT]) > 1,
        "no S change before the kill point — trajectory too tame"
    );
    assert!(
        distinct(&a.records()[KILL_AT..]) > 1,
        "no S change after the kill point — trajectory too tame"
    );
}

/// Serialization is deterministic and the envelope self-verifies: same
/// state → same bytes; any payload tamper → checksum refusal.
#[test]
fn snapshot_is_deterministic_and_tamper_evident() {
    let b = nbody::plummer(1200, 1.0, 1.0, 777);
    let mut t = tracker(&b.pos);
    for step in 0..12 {
        t.step(&trajectory(&b.pos, step)).unwrap();
    }
    let s1 = t.checkpoint(&trajectory(&b.pos, 11));
    let s2 = t.checkpoint(&trajectory(&b.pos, 11));
    assert_eq!(s1, s2, "checkpointing is a pure read of tracker state");

    // Tamper with one digit inside the payload.
    let idx = s1.find("\"records\"").unwrap();
    let mut bytes = s1.clone().into_bytes();
    for c in &mut bytes[idx..] {
        if c.is_ascii_digit() {
            *c = if *c == b'7' { b'8' } else { b'7' };
            break;
        }
    }
    let tampered = String::from_utf8(bytes).unwrap();
    let err = match StrategyTracker::<GravityKernel>::restore(
        GravityKernel::default(),
        HeteroNode::system_a(10, 2),
        &tampered,
    ) {
        Err(e) => e,
        Ok(_) => panic!("tampered snapshot must be refused"),
    };
    let msg = err.to_string();
    assert!(
        msg.contains("checksum"),
        "tamper must be caught by the checksum, got: {msg}"
    );
}

/// A snapshot from a different schema version is refused up front, and a
/// node that does not match the snapshot's device count is refused too.
#[test]
fn version_and_node_mismatches_are_refused() {
    let b = nbody::plummer(900, 1.0, 1.0, 881);
    let mut t = tracker(&b.pos);
    for step in 0..6 {
        t.step(&trajectory(&b.pos, step)).unwrap();
    }
    let snap = t.checkpoint(&trajectory(&b.pos, 5));

    let bumped = snap.replacen(
        &format!("\"schema_version\":{}", afmm::SCHEMA_VERSION),
        &format!("\"schema_version\":{}", afmm::SCHEMA_VERSION + 1),
        1,
    );
    assert_ne!(snap, bumped, "version field must be present to rewrite");
    let err = match StrategyTracker::<GravityKernel>::restore(
        GravityKernel::default(),
        HeteroNode::system_a(10, 2),
        &bumped,
    ) {
        Err(e) => e,
        Ok(_) => panic!("future-version snapshot must be refused"),
    };
    assert!(
        err.to_string().contains("schema"),
        "unexpected error: {err}"
    );

    // 2-GPU snapshot into a CPU-only node: refused, not silently degraded.
    let err = match StrategyTracker::<GravityKernel>::restore(
        GravityKernel::default(),
        HeteroNode::system_b(16),
        &snap,
    ) {
        Err(e) => e,
        Ok(_) => panic!("node-shape mismatch must be refused"),
    };
    assert!(
        err.to_string().to_lowercase().contains("gpu"),
        "unexpected error: {err}"
    );
}

/// The supervisor's auto-checkpoint + restore rung rewinds a poisoned run
/// to its last good state and the run then matches the clean continuation.
#[test]
fn supervisor_restore_continues_bit_identically() {
    let b = nbody::plummer(1500, 1.0, 1.0, 992);

    // Reference: clean supervised run, no faults.
    let mut reference = Supervisor::new(
        tracker(&b.pos),
        SupervisorConfig {
            checkpoint_every: 10,
            ..Default::default()
        },
    );
    while reference.step_index() < 40 {
        let pos = trajectory(&b.pos, reference.step_index());
        reference.step(&pos).unwrap();
    }

    // Victim: same run, but positions are poisoned at step 25. The
    // supervisor restores from the step-20 checkpoint and the driver
    // (keying the trajectory off `step_index`) replays forward.
    let mut victim = Supervisor::new(
        tracker(&b.pos),
        SupervisorConfig {
            checkpoint_every: 10,
            ..Default::default()
        },
    );
    let mut poisoned = false;
    while victim.step_index() < 40 {
        let idx = victim.step_index();
        let mut pos = trajectory(&b.pos, idx);
        if idx == 25 && !poisoned {
            poisoned = true;
            pos[7].y = f64::NAN;
        }
        victim.step(&pos).unwrap();
    }
    assert_eq!(victim.report().restores, 1, "the poison forced one restore");
    assert_records_bit_identical(reference.tracker().records(), victim.tracker().records());
}
