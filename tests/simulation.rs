//! Whole-simulation physics tests: the AFMM-driven time steppers must
//! produce credible dynamics (conservation laws, collapse behaviour,
//! Stokes-flow structure) while the load balancer runs underneath.

use afmm_repro::prelude::*;

#[test]
fn plummer_sphere_stays_virialized_under_fmm_dynamics() {
    // A warm (virial) Plummer sphere integrated with FMM forces should stay
    // statistically stationary: energy conserved, half-mass radius stable.
    let g = 1.0;
    let b = nbody::plummer(800, 1.0, g, 3001);
    let e0 = nbody::total_energy(&b, g, 0.05).total();
    let r0 = half_mass_radius(&b.pos);
    let mut sim = GravitySim::new(
        b,
        g,
        5e-4,
        0.05,
        FmmParams {
            order: 4,
            ..Default::default()
        },
        HeteroNode::system_a(10, 2),
        Strategy::Full,
        LbConfig {
            eps_switch_s: 2e-3,
            ..Default::default()
        },
        None,
    );
    for _ in 0..60 {
        sim.step().unwrap();
    }
    let e1 = nbody::total_energy(&sim.bodies, g, 0.05).total();
    let r1 = half_mass_radius(sim.positions());
    assert!(((e1 - e0) / e0).abs() < 0.03, "energy {e0} -> {e1}");
    assert!(
        (r1 / r0 - 1.0).abs() < 0.25,
        "half-mass radius {r0} -> {r1}"
    );
}

#[test]
fn cold_cloud_collapses() {
    // The paper's dynamic workload: a sub-virial cloud must contract.
    let setup = nbody::collapsing_plummer(800, 1.0, 3002);
    let r0 = half_mass_radius(&setup.bodies.pos);
    let t_ff = std::f64::consts::FRAC_PI_2 * (1.0f64 / (2.0 * 800.0)).sqrt();
    // A sub-virial (not perfectly cold) cloud needs a bit more than one
    // free-fall time before the half-mass radius clears the 0.8 r0 bar;
    // keep the same dt and integrate to 1.5 t_ff.
    let steps = 100;
    let mut sim = GravitySim::new(
        setup.bodies,
        1.0,
        1.5 * t_ff / steps as f64,
        0.05,
        FmmParams {
            order: 3,
            ..Default::default()
        },
        HeteroNode::system_a(10, 2),
        Strategy::Full,
        LbConfig {
            eps_switch_s: 2e-3,
            ..Default::default()
        },
        Some((setup.domain_center, setup.domain_half_width)),
    );
    for _ in 0..steps {
        sim.step().unwrap();
    }
    let r1 = half_mass_radius(sim.positions());
    assert!(r1 < 0.8 * r0, "no collapse: {r0} -> {r1}");
}

#[test]
fn momentum_conserved_through_full_machinery() {
    let g = 1.0;
    let b = nbody::two_clusters(600, 0.5, g, 6.0, 3.0, 3003);
    let p0 = nbody::total_momentum(&b);
    let mut sim = GravitySim::new(
        b,
        g,
        1e-3,
        0.05,
        FmmParams {
            order: 4,
            ..Default::default()
        },
        HeteroNode::system_a(4, 1),
        Strategy::Full,
        LbConfig {
            eps_switch_s: 2e-3,
            ..Default::default()
        },
        None,
    );
    for _ in 0..30 {
        sim.step().unwrap();
    }
    let p1 = nbody::total_momentum(&sim.bodies);
    // FMM forces are not exactly antisymmetric, but drift must be tiny
    // relative to the typical momentum scale of one body (~|v| ~ 10).
    assert!((p1 - p0).norm() < 0.5, "momentum drift {:?}", p1 - p0);
}

#[test]
fn stokes_points_follow_a_pusher() {
    // One strong localized forcing region in a quiescent tracer field: the
    // flow it induces must fall off with distance (Stokeslet ~ 1/r).
    let n = 800;
    let pts = nbody::uniform_cube(n, 2.0, 3004);
    let mut forces = vec![0.0; 3 * n];
    // Force only the points inside a small ball near the origin, along +x.
    let mut forced = 0;
    for (i, p) in pts.pos.iter().enumerate() {
        if p.norm() < 0.4 {
            forces[3 * i] = 1.0;
            forced += 1;
        }
    }
    assert!(forced > 2, "need some forced points");
    let mut engine = FmmEngine::new(
        StokesletKernel::new(1e-2, 1.0),
        FmmParams {
            order: 4,
            ..Default::default()
        },
        &pts.pos,
        32,
    );
    let sol = engine.solve(&pts.pos, &forces);
    // Mean |u| near the pusher vs far away.
    let (mut near, mut nn, mut far, mut nf) = (0.0, 0, 0.0, 0);
    for (i, p) in pts.pos.iter().enumerate() {
        let u = sol.field[i].norm();
        if p.norm() < 0.6 {
            near += u;
            nn += 1;
        } else if p.norm() > 2.0 {
            far += u;
            nf += 1;
        }
    }
    let (near, far) = (near / nn as f64, far / nf as f64);
    assert!(
        near > 2.0 * far,
        "flow must decay away from the pusher: near {near}, far {far}"
    );
    // And the near-field flow points with the forcing on average.
    let mean_ux: f64 = pts
        .pos
        .iter()
        .zip(&sol.field)
        .filter(|(p, _)| p.norm() < 0.6)
        .map(|(_, u)| u.x)
        .sum::<f64>();
    assert!(mean_ux > 0.0, "flow should follow the force direction");
}

#[test]
fn stokes_sim_driver_runs_with_balancer() {
    let pts = nbody::uniform_cube(600, 1.0, 3005);
    let forces = nbody::random_unit_forces(600, 3006);
    let mut sim = StokesSim::new(
        pts.pos,
        5e-3,
        1e-2,
        1.0,
        FmmParams {
            order: 3,
            ..Default::default()
        },
        HeteroNode::system_a(10, 2),
        Strategy::Full,
        LbConfig {
            eps_switch_s: 2e-3,
            ..Default::default()
        },
    );
    for _ in 0..12 {
        let rec = sim.step(&forces).unwrap();
        assert!(rec.compute() > 0.0);
        sim.engine().tree().check_invariants().unwrap();
    }
    assert_eq!(sim.records().len(), 12);
}

fn half_mass_radius(pos: &[Vec3]) -> f64 {
    let c: Vec3 = pos.iter().copied().sum::<Vec3>() / pos.len() as f64;
    let mut radii: Vec<f64> = pos.iter().map(|p| p.dist(c)).collect();
    radii.sort_by(|a, b| a.partial_cmp(b).unwrap());
    radii[radii.len() / 2]
}
