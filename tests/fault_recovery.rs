//! End-to-end resilience: a device drops out of a live run and the full
//! strategy's balancer must detect it, re-partition across the survivors,
//! and settle at a sane operating point — plus property tests of the
//! outlier-robust timing filter that feeds the balancer.

use afmm_repro::prelude::*;
use proptest::prelude::{prop, prop_assert, proptest, ProptestConfig, Strategy as PropStrategy};

fn tracker(
    node: HeteroNode,
    strategy: afmm::Strategy,
    pos: &[Vec3],
) -> StrategyTracker<GravityKernel> {
    StrategyTracker::new(
        GravityKernel::default(),
        FmmParams::default(),
        node,
        strategy,
        LbConfig {
            eps_switch_s: 2e-3,
            ..Default::default()
        },
        pos,
        None,
    )
}

/// Drop GPU 1 of 2 mid-run: the balancer must enter recovery, re-converge
/// within a bounded number of steps, and end with compute within 2x the
/// pre-fault steady state.
#[test]
fn dropout_of_one_gpu_reconverges_within_bound() {
    let b = nbody::plummer(6000, 1.0, 1.0, 7001);
    let mut t = tracker(HeteroNode::system_a(10, 2), afmm::Strategy::Full, &b.pos);
    let mut sched = FaultSchedule::new();
    sched.push(45, FaultEvent::GpuDropout { device: 1 });
    t.set_fault_schedule(sched);

    let mut computes = Vec::new();
    let mut saw_recovery = false;
    let mut settled_after = None;
    for i in 0..110 {
        let rec = t.step(&b.pos).unwrap();
        computes.push(rec.compute());
        if i >= 45 {
            if rec.state == LbState::Recovery {
                saw_recovery = true;
            }
            if saw_recovery && settled_after.is_none() && rec.state == LbState::Observation {
                settled_after = Some(i);
            }
        }
    }
    assert_eq!(t.node().num_online_gpus(), 1, "device 1 must stay offline");
    assert!(
        saw_recovery,
        "dropout must push the balancer through Recovery"
    );
    let settled = settled_after.expect("balancer must re-settle into Observation");
    assert!(
        settled - 45 <= 45,
        "re-convergence took {} steps",
        settled - 45
    );

    let steady_before: f64 = computes[35..45].iter().sum::<f64>() / 10.0;
    let steady_after: f64 = computes[100..].iter().sum::<f64>() / 10.0;
    assert!(
        steady_after <= 2.0 * steady_before,
        "post-fault steady state {steady_after} vs pre-fault {steady_before}"
    );
    assert!(computes.iter().all(|c| c.is_finite() && *c > 0.0));
}

/// Losing every GPU must not abort the run: the tracker falls back to a
/// CPU-only plan and keeps producing finite timings.
#[test]
fn losing_all_gpus_falls_back_to_cpu() {
    let b = nbody::plummer(3000, 1.0, 1.0, 7002);
    let mut t = tracker(HeteroNode::system_a(4, 1), afmm::Strategy::Full, &b.pos);
    let mut sched = FaultSchedule::new();
    sched.push(25, FaultEvent::GpuDropout { device: 0 });
    t.set_fault_schedule(sched);
    for i in 0..40 {
        let rec = t.step(&b.pos).unwrap();
        assert!(rec.compute().is_finite() && rec.compute() > 0.0);
        if i >= 25 {
            assert_eq!(rec.t_gpu, 0.0, "no GPU time with every device offline");
        }
    }
    assert_eq!(t.node().num_online_gpus(), 0);
}

/// Every fault class, fired into every strategy, must degrade service
/// rather than panic or error out.
#[test]
fn no_fault_class_panics_any_strategy() {
    let b = nbody::plummer(2000, 1.0, 1.0, 7003);
    let classes: Vec<(&str, Vec<(usize, FaultEvent)>)> = vec![
        ("dropout", vec![(8, FaultEvent::GpuDropout { device: 0 })]),
        (
            "drop_recover",
            vec![
                (8, FaultEvent::GpuDropout { device: 1 }),
                (16, FaultEvent::GpuRecover { device: 1 }),
            ],
        ),
        (
            "slowdown",
            vec![(
                8,
                FaultEvent::GpuSlowdown {
                    device: 0,
                    factor: 4.0,
                },
            )],
        ),
        (
            "cpu_load",
            vec![(8, FaultEvent::ExternalCpuLoad { factor: 3.0 })],
        ),
        ("noise", vec![(8, FaultEvent::TimingNoise { sigma: 0.2 })]),
    ];
    for (name, faults) in classes {
        for strategy in [
            afmm::Strategy::StaticS,
            afmm::Strategy::EnforceOnly,
            afmm::Strategy::Full,
        ] {
            let mut t = tracker(HeteroNode::system_a(6, 2), strategy, &b.pos);
            let mut sched = FaultSchedule::new();
            for (step, ev) in &faults {
                sched.push(*step, *ev);
            }
            t.set_fault_schedule(sched);
            for _ in 0..30 {
                let rec = t
                    .step(&b.pos)
                    .unwrap_or_else(|e| panic!("{name}/{strategy:?} errored: {e}"));
                assert!(
                    rec.compute().is_finite(),
                    "{name}/{strategy:?} non-finite compute"
                );
            }
        }
    }
}

/// A recovered device is folded back in: throughput returns to the
/// neighborhood of the pre-fault steady state.
#[test]
fn recover_event_restores_capacity() {
    let b = nbody::plummer(4000, 1.0, 1.0, 7004);
    let mut t = tracker(HeteroNode::system_a(10, 2), afmm::Strategy::Full, &b.pos);
    let mut sched = FaultSchedule::new();
    sched.push(40, FaultEvent::GpuDropout { device: 1 });
    sched.push(41, FaultEvent::GpuRecover { device: 1 });
    t.set_fault_schedule(sched);
    let mut computes = Vec::new();
    for _ in 0..90 {
        computes.push(t.step(&b.pos).unwrap().compute());
    }
    assert_eq!(t.node().num_online_gpus(), 2);
    let before: f64 = computes[30..40].iter().sum::<f64>() / 10.0;
    let after: f64 = computes[80..].iter().sum::<f64>() / 10.0;
    assert!(
        after <= 1.5 * before,
        "capacity not restored: {before} -> {after}"
    );
}

/// Telemetry-enabled variant of [`tracker`] for anomaly-attribution tests:
/// same configuration, but the online detector is live and every event goes
/// to the returned recorder.
fn telemetry_tracker(
    node: HeteroNode,
    strategy: afmm::Strategy,
    pos: &[Vec3],
) -> (StrategyTracker<GravityKernel>, Recorder) {
    let rec = Recorder::enabled();
    let t = StrategyTracker::with_telemetry(
        GravityKernel::default(),
        FmmParams::default(),
        node,
        strategy,
        LbConfig {
            eps_switch_s: 2e-3,
            ..Default::default()
        },
        pos,
        None,
        rec.clone(),
    );
    (t, rec)
}

/// Count of `anomaly.*` events in the recorder's ring buffer.
fn anomaly_events(rec: &Recorder) -> usize {
    rec.events_named("anomaly.step_time").len() + rec.events_named("anomaly.pred_error").len()
}

/// A GPU dropout at step k must be *attributed* — an `anomaly.*` event by
/// step k+3 — not just silently absorbed by the recovery path.
#[test]
fn gpu_dropout_flagged_within_three_steps() {
    let b = nbody::plummer(6000, 1.0, 1.0, 7001);
    let (mut t, rec) = telemetry_tracker(HeteroNode::system_a(10, 2), afmm::Strategy::Full, &b.pos);
    let fault_step = 45;
    let mut sched = FaultSchedule::new();
    sched.push(fault_step, FaultEvent::GpuDropout { device: 1 });
    t.set_fault_schedule(sched);
    for _ in 0..fault_step + 10 {
        t.step(&b.pos).unwrap();
    }
    let anomalies = t.anomalies();
    assert!(
        !anomalies.is_empty(),
        "dropout produced no anomaly at all in {} steps",
        fault_step + 10
    );
    let first = anomalies[0].0;
    assert!(
        (fault_step..=fault_step + 3).contains(&first),
        "first anomaly at step {first}, expected within 3 steps of the fault at {fault_step}"
    );
    assert!(
        anomaly_events(&rec) >= anomalies.len(),
        "every detected anomaly must also land in the event trace"
    );
}

/// The detector's false-positive contract: a fault-free run on a static
/// workload emits zero `anomaly.*` events.
#[test]
fn clean_run_emits_zero_anomaly_events() {
    let b = nbody::plummer(6000, 1.0, 1.0, 7001);
    let (mut t, rec) = telemetry_tracker(HeteroNode::system_a(10, 2), afmm::Strategy::Full, &b.pos);
    for _ in 0..80 {
        t.step(&b.pos).unwrap();
    }
    assert!(
        t.anomalies().is_empty(),
        "clean run flagged anomalies: {:?}",
        t.anomalies()
    );
    assert_eq!(anomaly_events(&rec), 0);
}

fn arb_times(max_n: usize) -> impl PropStrategy<Value = Vec<f64>> {
    prop::collection::vec(1e-6f64..10.0, 1..max_n)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Scaling every sample by a positive constant scales the estimate by
    /// the same constant (the filter imposes no absolute time scale).
    #[test]
    fn filter_is_scale_equivariant(times in arb_times(24), scale in 1e-3f64..1e3) {
        let mut a = TimingFilter::default();
        let mut b = TimingFilter::default();
        for t in &times {
            a.push(*t);
            b.push(*t * scale);
        }
        let (ea, eb) = (a.estimate().unwrap(), b.estimate().unwrap());
        prop_assert!((eb - ea * scale).abs() <= 1e-9 * eb.abs().max(ea.abs() * scale));
    }

    /// Garbage in (NaN, infinities, zeros, negatives) never panics and
    /// never corrupts the estimate into a non-finite or negative value.
    #[test]
    fn filter_never_panics_or_corrupts_on_garbage(
        raw in prop::collection::vec(
            prop::strategy::Union::new(vec![
                (-10.0f64..10.0).boxed(),
                prop::strategy::Just(f64::NAN).boxed(),
                prop::strategy::Just(f64::INFINITY).boxed(),
                prop::strategy::Just(f64::NEG_INFINITY).boxed(),
                prop::strategy::Just(0.0f64).boxed(),
            ]),
            0..32,
        )
    ) {
        let mut f = TimingFilter::default();
        for r in &raw {
            let out = f.push(*r);
            prop_assert!(out.is_finite() || f.samples() == 0);
        }
        if let Some(e) = f.estimate() {
            prop_assert!(e.is_finite() && e >= 0.0);
        }
    }

    /// The filter's estimate always stays within the range of the samples
    /// it accepted (medians and convex EWMA mixes cannot extrapolate).
    #[test]
    fn filter_estimate_stays_in_sample_range(times in arb_times(24)) {
        let mut f = TimingFilter::default();
        for t in &times {
            f.push(*t);
        }
        let lo = times.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = times.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let e = f.estimate().unwrap();
        prop_assert!(e >= lo - 1e-12 && e <= hi + 1e-12);
    }

    /// Fault schedules never fire events at the wrong step, whatever order
    /// they were pushed in.
    #[test]
    fn schedule_fires_exactly_at_its_step(steps in prop::collection::vec(0usize..256, 0..16)) {
        let mut sched = FaultSchedule::new();
        for s in &steps {
            sched.push(*s, FaultEvent::TimingNoise { sigma: 0.1 });
        }
        for probe in 0..256usize {
            let expected = steps.iter().filter(|s| **s == probe).count();
            prop_assert!(sched.events_at(probe).count() == expected);
        }
    }
}

/// Back-to-back dropouts on a 4-GPU node: the second device dies while the
/// balancer is still in Recovery from the first. The run must absorb both,
/// finish with exactly two devices online, and re-settle.
#[test]
fn double_dropout_during_recovery_reconverges() {
    let b = nbody::plummer(6000, 1.0, 1.0, 7010);
    let mut t = tracker(HeteroNode::system_a(10, 4), afmm::Strategy::Full, &b.pos);
    let mut sched = FaultSchedule::new();
    sched.push(40, FaultEvent::GpuDropout { device: 1 });
    sched.push(41, FaultEvent::GpuDropout { device: 3 });
    t.set_fault_schedule(sched);

    let mut state_at = Vec::new();
    let mut computes = Vec::new();
    for _ in 0..120 {
        let rec = t.step(&b.pos).unwrap();
        state_at.push(rec.state);
        computes.push(rec.compute());
        assert!(rec.compute().is_finite() && rec.compute() > 0.0);
    }
    assert_eq!(
        t.node().num_online_gpus(),
        2,
        "both dropped devices stay offline"
    );
    assert!(
        state_at[40..].contains(&LbState::Recovery),
        "the dropouts must push the balancer through Recovery"
    );
    assert_eq!(
        state_at[41],
        LbState::Recovery,
        "test premise: the second dropout lands while still in Recovery"
    );
    assert!(
        state_at[60..].contains(&LbState::Observation),
        "balancer must re-settle after the double fault"
    );
    let steady_before: f64 = computes[30..40].iter().sum::<f64>() / 10.0;
    let steady_after: f64 = computes[110..].iter().sum::<f64>() / 10.0;
    assert!(
        steady_after <= 3.0 * steady_before,
        "post-double-fault steady state {steady_after} vs pre-fault {steady_before}"
    );
}

/// Corruption injected while incremental plan patches are in flight (the
/// positions drift every step, so stamps are live): the supervisor's
/// pre-step audit must catch it and the rebuild rung must heal it without
/// aborting the run.
#[test]
fn corruption_mid_patch_is_audited_and_healed() {
    let b = nbody::plummer(2500, 1.0, 1.0, 7011);
    let traj = |step: usize| -> Vec<Vec3> {
        let f = 0.996_f64.powi(step as i32);
        b.pos.iter().map(|p| *p * f).collect()
    };
    let mut sup = Supervisor::new(
        tracker(HeteroNode::system_a(10, 2), afmm::Strategy::Full, &b.pos),
        SupervisorConfig::default(),
    );
    // Drift long enough that the balancer settles and every step runs
    // incremental patches against the cached plan.
    for step in 0..45 {
        sup.step(&traj(step)).unwrap();
    }
    let corrupted = sup
        .tracker_mut()
        .engine_mut()
        .plan_mut_for_chaos()
        .map(|p| p.corrupt_truncate_list())
        .unwrap_or(false);
    assert!(corrupted, "live patched plan must be available to corrupt");

    let (_, action) = sup.step(&traj(45)).unwrap();
    assert_eq!(
        action,
        RecoveryAction::Rebuild,
        "audit must catch the truncation and the rebuild rung must heal it"
    );
    assert!(sup.report().audit_failures >= 1);
    // Healed: the run continues clean.
    for step in 46..55 {
        let (_, action) = sup.step(&traj(step)).unwrap();
        assert_eq!(action, RecoveryAction::None, "step {step} not clean");
    }
}
