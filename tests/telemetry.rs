//! End-to-end telemetry: the recorder threaded through the whole stack —
//! engine solve spans, virtual per-phase spans, plan counters, balancer
//! flight record, GPU-system metrics and the prediction audit — plus the
//! guarantee that instrumentation never perturbs the simulation itself.

use afmm_repro::prelude::*;
use telemetry::{Value, VecSink};

fn small_cfg() -> LbConfig {
    LbConfig {
        eps_switch_s: 2e-3,
        ..Default::default()
    }
}

/// A dynamic (contracting) run with telemetry on: every acceptance artifact
/// of the trace must be present.
#[test]
fn dynamic_run_emits_full_trace() {
    let setup = nbody::collapsing_plummer(4000, 1.0, 7001);
    let rec = Recorder::enabled();
    let sink = VecSink::new();
    rec.set_sink(sink.clone());
    let mut tracker = StrategyTracker::with_telemetry(
        GravityKernel::default(),
        FmmParams::default(),
        HeteroNode::system_a(10, 2),
        Strategy::Full,
        small_cfg(),
        &setup.bodies.pos,
        Some((setup.domain_center, setup.domain_half_width)),
        rec.clone(),
    );
    let mut pos = setup.bodies.pos.clone();
    for _ in 0..15 {
        tracker.step(&pos).unwrap();
        for p in &mut pos {
            *p *= 0.96;
        }
    }

    // Spans for all five far-field phases + P2P.
    for name in [
        "phase.p2m",
        "phase.m2m",
        "phase.m2l",
        "phase.l2l",
        "phase.l2p",
        "phase.p2p",
    ] {
        let spans = rec.events_named(name);
        assert_eq!(spans.len(), 15, "one {name} span per step");
        assert!(spans.iter().all(|e| e.dur_s.unwrap_or(-1.0) >= 0.0));
    }

    // Every LbState transition is in the flight record, with vocabulary
    // causes and states.
    let transitions = rec.events_named("lb.transition");
    assert!(!transitions.is_empty(), "Full strategy must leave Search");
    let states = ["search", "incremental", "observation", "frozen", "recovery"];
    for t in &transitions {
        for key in ["from", "to"] {
            match t.field(key) {
                Some(Value::Str(s)) => assert!(states.contains(&s.as_str()), "bad state {s}"),
                other => panic!("transition {key} missing: {other:?}"),
            }
        }
    }

    // ≥1 prediction audit per balanced step (every step after the first).
    assert_eq!(tracker.audits().len(), 14);
    let stats = tracker.audits().stats();
    assert!(stats.median.is_finite() && stats.median >= 0.0);

    // GPU metrics flowed from the simulated system.
    let metrics = rec.metrics();
    assert!(metrics.counter("gpu.launches").unwrap_or(0) > 0);
    assert!(metrics.gauge("tree.s").is_some());

    // Everything that hit the ring also hit the sink, as valid JSONL.
    let lines = sink.lines();
    assert!(lines.len() >= rec.events().len());
    for line in &lines {
        assert!(
            line.starts_with('{') && line.ends_with('}'),
            "bad JSONL: {line}"
        );
        assert!(line.contains("\"name\":"));
    }
}

/// The numeric solve path emits its three top-level spans.
#[test]
fn solve_emits_phase_spans() {
    let b = nbody::plummer(2000, 1.0, 1.0, 7002);
    let rec = Recorder::enabled();
    let mut engine = FmmEngine::new(GravityKernel::default(), FmmParams::default(), &b.pos, 64);
    engine.set_recorder(rec.clone());
    engine.solve(&b.pos, &b.mass);
    for name in ["solve.upsweep", "solve.downsweep", "solve.near_field"] {
        let spans = rec.events_named(name);
        assert_eq!(spans.len(), 1, "missing {name}");
        assert!(spans[0].dur_s.unwrap() >= 0.0);
    }
}

/// Telemetry must be a pure observer: identical records with it on or off,
/// and the disabled recorder must keep the ring empty.
#[test]
fn instrumentation_is_a_pure_observer() {
    let setup = nbody::collapsing_plummer(3000, 1.0, 7003);
    let mk = |rec: Option<Recorder>| {
        let mut t = StrategyTracker::new(
            GravityKernel::default(),
            FmmParams::default(),
            HeteroNode::system_a(10, 2),
            Strategy::Full,
            small_cfg(),
            &setup.bodies.pos,
            Some((setup.domain_center, setup.domain_half_width)),
        );
        if let Some(rec) = rec {
            t.set_recorder(rec);
        }
        t
    };
    let off = Recorder::disabled();
    let mut plain = mk(Some(off.clone()));
    let mut traced = mk(Some(Recorder::enabled()));
    let mut pos = setup.bodies.pos.clone();
    for _ in 0..10 {
        let a = plain.step(&pos).unwrap();
        let b = traced.step(&pos).unwrap();
        assert_eq!(a.s, b.s);
        assert_eq!(a.state, b.state);
        assert_eq!(a.t_cpu.to_bits(), b.t_cpu.to_bits());
        assert_eq!(a.t_gpu.to_bits(), b.t_gpu.to_bits());
        assert_eq!(a.t_lb.to_bits(), b.t_lb.to_bits());
        for p in &mut pos {
            *p *= 0.97;
        }
    }
    assert!(off.events().is_empty(), "disabled recorder must stay empty");
    assert!(!off.is_enabled());
}
