//! Property tests of the persistent execution plan (satellite of the plan
//! layer): a plan patched through an arbitrary interleaving of Collapse and
//! PushDown edits must be *indistinguishable* from one rebuilt from scratch —
//! same interaction lists (as sets), same op counts, and a GPU job list that
//! partitions the same near-field work.

use afmm::{build_gpu_jobs, ExecutionPlan};
use gpu_sim::P2pJob;
use octree::{
    build_adaptive, count_ops, dual_traversal, BuildParams, InteractionLists, Mac, NodeId, Octree,
};
use proptest::prelude::*;

fn arb_points(max_n: usize) -> impl Strategy<Value = Vec<geom::Vec3>> {
    prop::collection::vec(
        (-1.0f64..1.0, -1.0f64..1.0, -1.0f64..1.0).prop_map(|(x, y, z)| geom::Vec3::new(x, y, z)),
        8..max_n,
    )
}

/// A random plan-routed edit.
#[derive(Clone, Debug)]
enum PlanOp {
    Collapse(usize),
    PushDown(usize),
}

fn arb_plan_ops() -> impl Strategy<Value = Vec<PlanOp>> {
    prop::collection::vec(
        prop_oneof![
            (0usize..64).prop_map(PlanOp::Collapse),
            (0usize..64).prop_map(PlanOp::PushDown),
        ],
        1..14,
    )
}

/// The paper's two MAC regimes: a strict opening angle (deep M2L lists) and a
/// permissive one (shallow lists, heavier P2P).
fn arb_theta() -> impl Strategy<Value = f64> {
    prop_oneof![Just(0.35), Just(0.8)]
}

/// Per-target sorted copies of the lists, for order-insensitive comparison
/// (a patched list is a set-equal permutation of a fresh traversal's).
fn sorted_lists(lists: &InteractionLists) -> (Vec<Vec<NodeId>>, Vec<Vec<NodeId>>) {
    let norm = |side: &Vec<Vec<NodeId>>| {
        side.iter()
            .map(|v| {
                let mut v = v.clone();
                v.sort_unstable();
                v
            })
            .collect::<Vec<_>>()
    };
    (norm(&lists.m2l), norm(&lists.p2p))
}

/// Jobs with per-job source counts sorted: the patched plan may enumerate a
/// leaf's P2P sources in a different order, which permutes `source_counts`
/// without changing the work the job describes.
fn normalized_jobs(jobs: &[P2pJob]) -> Vec<P2pJob> {
    jobs.iter()
        .map(|j| {
            let mut sc = j.source_counts.clone();
            sc.sort_unstable();
            P2pJob::new(j.targets, sc)
        })
        .collect()
}

fn apply_ops(plan: &mut ExecutionPlan, tree: &mut Octree, ops: &[PlanOp]) -> usize {
    let mut applied = 0;
    for op in ops {
        match *op {
            PlanOp::Collapse(k) => {
                let nodes = tree.visible_nodes();
                let id = nodes[k % nodes.len()];
                applied += usize::from(plan.apply_collapse(tree, id));
            }
            PlanOp::PushDown(k) => {
                let leaves = tree.visible_leaves();
                let id = leaves[k % leaves.len()];
                applied += usize::from(plan.apply_push_down(tree, id));
            }
        }
    }
    applied
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(120))]

    /// After any interleaving of plan-routed Collapse/PushDown edits, the
    /// patched lists and counts equal a fresh dual traversal + count of the
    /// same tree, at both MAC regimes.
    #[test]
    fn patched_plan_equals_fresh_build(
        pts in arb_points(300),
        s in 4usize..64,
        ops in arb_plan_ops(),
        theta in arb_theta(),
    ) {
        let mac = Mac::new(theta);
        let mut tree = build_adaptive(&pts, BuildParams::with_s(s));
        let mut plan = ExecutionPlan::build(&tree, mac);
        apply_ops(&mut plan, &mut tree, &ops);
        prop_assert!(tree.check_invariants().is_ok());

        let fresh = dual_traversal(&tree, mac);
        prop_assert_eq!(sorted_lists(plan.lists()), sorted_lists(&fresh));
        prop_assert_eq!(plan.counts(), count_ops(&tree, &fresh));
    }

    /// The plan's cached GPU job list always matches what `build_gpu_jobs`
    /// derives — exactly against its own lists (the cache is not stale), and
    /// up to source order against a fresh traversal's lists.
    #[test]
    fn patched_jobs_match_rebuilt_jobs(
        pts in arb_points(300),
        s in 4usize..64,
        ops in arb_plan_ops(),
        theta in arb_theta(),
    ) {
        let mac = Mac::new(theta);
        let mut tree = build_adaptive(&pts, BuildParams::with_s(s));
        let mut plan = ExecutionPlan::build(&tree, mac);
        apply_ops(&mut plan, &mut tree, &ops);

        let cached = plan.gpu_jobs(&tree).to_vec();
        prop_assert_eq!(&cached, &build_gpu_jobs(&tree, plan.lists()));
        let fresh = dual_traversal(&tree, mac);
        prop_assert_eq!(
            normalized_jobs(&cached),
            normalized_jobs(&build_gpu_jobs(&tree, &fresh))
        );
    }

    /// Plan-routed no-ops (collapsing a leaf, pushing down an internal node)
    /// leave the plan bit-for-bit untouched.
    #[test]
    fn refused_edits_do_not_perturb_the_plan(
        pts in arb_points(200),
        s in 4usize..48,
        theta in arb_theta(),
    ) {
        let mac = Mac::new(theta);
        let mut tree = build_adaptive(&pts, BuildParams::with_s(s));
        let mut plan = ExecutionPlan::build(&tree, mac);
        let before_lists = sorted_lists(plan.lists());
        let before_counts = plan.counts();
        for id in tree.visible_nodes() {
            if tree.node(id).is_leaf() {
                prop_assert!(!plan.apply_collapse(&mut tree, id));
            } else {
                prop_assert!(!plan.apply_push_down(&mut tree, id));
            }
        }
        prop_assert_eq!(sorted_lists(plan.lists()), before_lists);
        prop_assert_eq!(plan.counts(), before_counts);
    }
}
