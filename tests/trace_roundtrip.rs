//! The trace pipeline's round-trip contract, end to end: every JSONL line a
//! recorder emits parses back into a typed record that re-serializes to the
//! *identical bytes* — including the `push_json_f64` edge cases (NaN, ±inf,
//! negative zero) — and the Chrome export of a real run is valid JSON with
//! the phase / device / balancer tracks present.

use afmm_repro::prelude::*;
use afmm_repro::telemetry::{self, intern, RecordKind};
use proptest::prelude::{
    any, prop, prop_assert, prop_assert_eq, prop_oneof, proptest, Just, ProptestConfig,
    Strategy as PropStrategy,
};

// ---- property: to_json -> from_json identity over all Value variants ----

/// Character palette covering every escape class the encoder handles: the
/// two mandatory escapes, the named control escapes, a raw control byte,
/// ASCII, and multi-byte UTF-8 up to an astral-plane char (surrogate pair
/// in \u form).
const CHAR_PALETTE: [char; 12] = [
    'a', 'Z', '0', ' ', '"', '\\', '\n', '\r', '\t', '\u{1}', 'é', '🚀',
];

fn arb_string() -> impl PropStrategy<Value = String> {
    prop::collection::vec(0usize..CHAR_PALETTE.len(), 0..12)
        .prop_map(|ix| ix.into_iter().map(|i| CHAR_PALETTE[i]).collect())
}

fn arb_f64() -> impl PropStrategy<Value = f64> {
    prop_oneof![
        any::<f64>().boxed(),
        (-1.0f64..1.0).boxed(),
        Just(f64::NAN).boxed(),
        Just(f64::INFINITY).boxed(),
        Just(f64::NEG_INFINITY).boxed(),
        Just(-0.0f64).boxed(),
        Just(0.0f64).boxed(),
        Just(5e-324).boxed(), // smallest subnormal
        Just(1e300).boxed(),  // 301-digit integral rendering
        Just(0.1f64).boxed(), // classic shortest-round-trip case
    ]
}

fn arb_value() -> impl PropStrategy<Value = telemetry::Value> {
    prop_oneof![
        any::<u64>().prop_map(telemetry::Value::U64).boxed(),
        (i64::MIN..i64::MAX).prop_map(telemetry::Value::I64).boxed(),
        Just(telemetry::Value::I64(i64::MAX)).boxed(),
        arb_f64().prop_map(telemetry::Value::F64).boxed(),
        any::<bool>().prop_map(telemetry::Value::Bool).boxed(),
        arb_string().prop_map(telemetry::Value::Str).boxed(),
    ]
}

/// Field keys must be `&'static str`; draw from a fixed pool.
const KEY_POOL: [&str; 6] = ["alpha", "beta", "gamma", "delta", "eps", "zeta"];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn event_record_roundtrips_byte_for_byte(
        seq in any::<u64>(),
        step in any::<u64>(),
        is_span in any::<bool>(),
        dur in prop_oneof![
            Just(None).boxed(),
            arb_f64().prop_map(Some).boxed(),
        ],
        fields in prop::collection::vec((0usize..KEY_POOL.len(), arb_value()), 0..6),
    ) {
        let rec = telemetry::EventRecord {
            seq,
            step,
            kind: if is_span { RecordKind::Span } else { RecordKind::Event },
            name: "prop.event",
            dur_s: dur,
            fields: fields
                .into_iter()
                .map(|(k, v)| (KEY_POOL[k], v))
                .collect(),
        };
        let line = rec.to_json();
        let back = telemetry::EventRecord::from_json(&line)
            .unwrap_or_else(|e| panic!("failed to parse {line}: {e}"));
        // Byte-for-byte: string equality is the identity that survives NaN
        // (NaN != NaN breaks record equality but not its serialization).
        prop_assert_eq!(back.to_json(), line);
        prop_assert_eq!(back.seq, rec.seq);
        prop_assert_eq!(back.step, rec.step);
        prop_assert_eq!(back.kind, rec.kind);
        prop_assert_eq!(back.name, rec.name);
        prop_assert_eq!(back.fields.len(), rec.fields.len());
    }

    /// The nonfinite-to-null mapping specifically: whatever float goes in,
    /// the parsed record re-serializes identically, and non-finite inputs
    /// come back as NaN (the canonical "was null" marker).
    #[test]
    fn push_json_f64_edges_roundtrip(x in arb_f64()) {
        let rec = telemetry::EventRecord {
            seq: 1,
            step: 2,
            kind: RecordKind::Span,
            name: "edge",
            dur_s: Some(x),
            fields: vec![("v", telemetry::Value::F64(x))],
        };
        let line = rec.to_json();
        let back = telemetry::EventRecord::from_json(&line).unwrap();
        prop_assert_eq!(back.to_json(), line);
        if !x.is_finite() {
            prop_assert!(matches!(back.dur_s, Some(d) if d.is_nan()));
        } else if x == 0.0 && x.is_sign_negative() {
            // Sign of zero survives: −0 prints as "-0" and must come back as
            // F64(−0.0), not the canonical integer zero (+0 prints "0" and
            // canonicalizes to U64(0) — equally byte-identical).
            let back_v = match back.field("v") {
                Some(telemetry::Value::F64(v)) => *v,
                other => panic!("expected F64, got {other:?}"),
            };
            prop_assert_eq!(back_v.to_bits(), x.to_bits());
        }
    }
}

// ---- full-run round trip + Chrome export -----------------------------------

/// Run a real telemetry-enabled tracker (with a mid-run dropout so the
/// recovery path is in the trace too) and return the sink's JSONL lines.
fn traced_run_lines(steps: usize) -> Vec<String> {
    let setup = nbody::collapsing_plummer(3000, 1.0, 42);
    let rec = Recorder::enabled();
    let sink = VecSink::new();
    rec.set_sink(sink.clone());
    let mut tracker = StrategyTracker::with_telemetry(
        GravityKernel::default(),
        FmmParams::default(),
        HeteroNode::system_a(10, 2),
        Strategy::Full,
        LbConfig {
            eps_switch_s: 2e-3,
            ..Default::default()
        },
        &setup.bodies.pos,
        Some((setup.domain_center, setup.domain_half_width)),
        rec.clone(),
    );
    let mut sched = FaultSchedule::new();
    sched.push(steps * 2 / 3, FaultEvent::GpuDropout { device: 1 });
    tracker.set_fault_schedule(sched);
    let mut pos = setup.bodies.pos.clone();
    for step in 0..steps {
        tracker.step(&pos).unwrap();
        if step < steps / 2 {
            for p in &mut pos {
                *p *= 0.98;
            }
        }
    }
    sink.lines()
}

#[test]
fn full_tracker_run_roundtrips_byte_for_byte() {
    let lines = traced_run_lines(25);
    assert!(
        lines.len() > 100,
        "expected a substantial trace, got {} lines",
        lines.len()
    );
    for (i, line) in lines.iter().enumerate() {
        let rec = telemetry::EventRecord::from_json(line)
            .unwrap_or_else(|e| panic!("line {i} failed to parse: {e}\n{line}"));
        assert_eq!(
            rec.to_json(),
            *line,
            "line {i} did not reserialize byte-for-byte"
        );
    }
}

#[test]
fn chrome_export_of_real_run_is_valid_with_all_tracks() {
    let lines = traced_run_lines(25);
    let records: Vec<telemetry::EventRecord> = lines
        .iter()
        .map(|l| telemetry::EventRecord::from_json(l).unwrap())
        .collect();
    let json = ChromeTraceExporter::export(&records);
    assert!(
        telemetry::json_syntax_ok(&json),
        "Chrome export is not well-formed JSON"
    );
    assert!(json.contains("\"traceEvents\""));
    // Phase tracks (one per FMM phase), device tracks, balancer track.
    for want in [
        "\"p2m\"",
        "\"m2m\"",
        "\"m2l\"",
        "\"l2l\"",
        "\"l2p\"",
        "\"p2p\"",
        "\"gpu0\"",
        "\"gpu1\"",
        "\"load balancer\"",
        "lb.transition",
        "lb.recovery",
    ] {
        assert!(json.contains(want), "export missing {want}");
    }
    // Span, instant, counter, and metadata phases all present.
    for ph in [
        "\"ph\":\"X\"",
        "\"ph\":\"i\"",
        "\"ph\":\"C\"",
        "\"ph\":\"M\"",
    ] {
        assert!(json.contains(ph), "export missing {ph} events");
    }
}

#[test]
fn trace_reader_streams_file_back_identically() {
    let lines = traced_run_lines(12);
    let path =
        std::env::temp_dir().join(format!("afmm_trace_roundtrip_{}.jsonl", std::process::id()));
    std::fs::write(&path, lines.join("\n")).unwrap();
    let records = telemetry::read_trace(&path).unwrap();
    let _ = std::fs::remove_file(&path);
    assert_eq!(records.len(), lines.len());
    for (rec, line) in records.iter().zip(&lines) {
        assert_eq!(rec.to_json(), *line);
    }
    // Sequence numbers came back in emission order.
    assert!(records.windows(2).all(|w| w[0].seq < w[1].seq));
}

#[test]
fn interned_names_match_static_vocabulary() {
    let lines = traced_run_lines(8);
    let rec = telemetry::EventRecord::from_json(&lines[0]).unwrap();
    // Parsing the same name twice yields pointer-identical statics.
    let again = telemetry::EventRecord::from_json(&lines[0]).unwrap();
    assert!(std::ptr::eq(rec.name, again.name));
    assert_eq!(intern(rec.name), rec.name);
}
