//! Shape-level regression tests of every experiment harness's core logic at
//! tiny scale: if the code drifts in a way that would flip a paper
//! conclusion, these fail long before anyone re-runs the full harnesses.

use afmm_repro::prelude::*;
use fmm_math::Kernel;
use octree::{build_uniform, count_ops, dual_traversal};

fn flops() -> fmm_math::OpFlops {
    GravityKernel::default().op_flops(&ExpansionOps::new(FmmParams::default().order))
}

fn time_tree(tree: &Octree, node: &HeteroNode) -> afmm::TimingReport {
    let lists = dual_traversal(tree, Mac::default());
    afmm::time_step(tree, &lists, &flops(), node).unwrap()
}

/// Fig 3's essence: on an adaptive tree, CPU cost falls and GPU cost rises
/// (in the post-knee regime) as S grows; the crossover is interior.
#[test]
fn fig3_shape_adaptive_costs_cross_smoothly() {
    let b = nbody::plummer(20_000, 1.0, 1.0, 4001);
    let node = HeteroNode::system_a(10, 4);
    let mut prev_cpu = f64::INFINITY;
    let mut series = Vec::new();
    for s in [32usize, 91, 256, 724, 2048] {
        let tree = build_adaptive(&b.pos, BuildParams::with_s(s));
        let t = time_tree(&tree, &node);
        assert!(t.t_cpu < prev_cpu, "t_cpu must fall with S");
        prev_cpu = t.t_cpu;
        series.push(t);
    }
    // GPU cost must rise across the upper range.
    assert!(series.last().unwrap().t_gpu > series[1].t_gpu);
    // Crossover: CPU dominates at the left end, GPU at the right end.
    assert!(series[0].t_cpu > series[0].t_gpu);
    let last = series.last().unwrap();
    assert!(last.t_gpu > last.t_cpu);
}

/// Fig 4's essence: the uniform decomposition only offers a handful of
/// discrete operating points with large jumps.
#[test]
fn fig4_shape_uniform_gap_has_jumps() {
    let b = nbody::uniform_cube(20_000, 1.0, 4002);
    let node = HeteroNode::system_a(10, 4);
    let mut computes = Vec::new();
    for depth in [2u16, 3, 4] {
        let tree = build_uniform(&b.pos, depth, 1e-6);
        computes.push(time_tree(&tree, &node).compute());
    }
    // Neighbouring levels differ by large factors — the "gap".
    for w in computes.windows(2) {
        let ratio = (w[0] / w[1]).max(w[1] / w[0]);
        assert!(ratio > 2.0, "uniform levels too close: {computes:?}");
    }
}

/// Fig 6's essence: CPU speedup grows with cores and saturates below
/// perfect efficiency at 32.
#[test]
fn fig6_shape_cpu_scaling() {
    let b = nbody::plummer(30_000, 1.0, 1.0, 4003);
    let tree = build_adaptive(&b.pos, BuildParams::with_s(64));
    let t1 = time_tree(&tree, &HeteroNode::system_b(1)).t_cpu;
    let mut prev = f64::INFINITY;
    for cores in [1usize, 4, 16, 32] {
        let t = time_tree(&tree, &HeteroNode::system_b(cores)).t_cpu;
        assert!(t < prev);
        prev = t;
    }
    let t32 = time_tree(&tree, &HeteroNode::system_b(32)).t_cpu;
    let speedup = t1 / t32;
    assert!((20.0..32.0).contains(&speedup), "32-core speedup {speedup}");
}

/// Table I's essence: GPU time scales near-linearly 1→4 devices.
#[test]
fn table1_shape_gpu_scaling() {
    let b = nbody::plummer(30_000, 1.0, 1.0, 4004);
    let tree = build_adaptive(&b.pos, BuildParams::with_s(256));
    let t1 = time_tree(&tree, &HeteroNode::system_a(10, 1)).t_gpu;
    let t4 = time_tree(&tree, &HeteroNode::system_a(10, 4)).t_gpu;
    let speedup = t1 / t4;
    assert!((3.3..4.05).contains(&speedup), "4-GPU speedup {speedup}");
}

/// Fig 7's essence: the heterogeneous node crushes the serial baseline, and
/// more hardware helps.
#[test]
fn fig7_shape_hetero_speedup() {
    let b = nbody::plummer(30_000, 1.0, 1.0, 4005);
    let grid = [32usize, 91, 256, 724, 2048];
    let best = |node: &HeteroNode| {
        grid.iter()
            .map(|&s| {
                let tree = build_adaptive(&b.pos, BuildParams::with_s(s));
                time_tree(&tree, node).compute()
            })
            .fold(f64::INFINITY, f64::min)
    };
    let serial = best(&HeteroNode::serial());
    let small = best(&HeteroNode::system_a(4, 1));
    let big = best(&HeteroNode::system_a(10, 4));
    assert!(small < serial / 10.0, "4C1G should beat serial by >10x");
    assert!(big < small, "10C4G should beat 4C1G");
    assert!(serial / big > 30.0, "10C4G speedup {}", serial / big);
}

/// Fig 10's essence: at the S the search settles on (the uniform-gap
/// boundary, where one whole level is slightly too coarse and the next
/// slightly too fine), FGO's local edits lower the predicted (and realized)
/// compute time.
#[test]
fn fig10_shape_fgo_bridges_the_gap() {
    let b = nbody::uniform_cube(50_000, 1.0, 48); // the fig10 harness workload
    let node = HeteroNode::system_a(10, 4);
    let mut engine = FmmEngine::new(
        StokesletKernel::new(1e-3, 1.0),
        FmmParams::default(),
        &b.pos,
        899, // where the harness's search settles (results/fig10.tsv)
    );
    let counts = engine.refresh_lists();
    let f =
        StokesletKernel::new(1e-3, 1.0).op_flops(&ExpansionOps::new(FmmParams::default().order));
    let timing = afmm::time_step(engine.tree(), engine.lists(), &f, &node).unwrap();
    let mut model = CostModel::new();
    model.observe(&counts, &timing, &f, &node);
    let before = model.predict(&counts, &node);
    let out = afmm::fine_grained_optimize(
        &mut engine,
        &model,
        &node,
        &LbConfig {
            eps_switch_s: 1e-4,
            ..Default::default()
        },
    );
    assert!(
        out.prediction.compute() < 0.97 * before.compute(),
        "FGO should bridge the uniform gap: {} !< {}",
        out.prediction.compute(),
        before.compute()
    );
    let realized = afmm::time_step(engine.tree(), engine.lists(), &f, &node).unwrap();
    assert!(realized.compute() < timing.compute());
}

/// The §VIII.E extension's essence: offloading P2M/L2P helps a CPU-starved
/// node and leaves a GPU-bound one untouched.
#[test]
fn extension_shape_offload() {
    let b = nbody::plummer(30_000, 1.0, 1.0, 4007);
    let tree = build_adaptive(&b.pos, BuildParams::with_s(256));
    let lists = dual_traversal(&tree, Mac::default());
    let f = flops();
    let starved = HeteroNode::system_a(2, 4);
    let base = afmm::time_step(&tree, &lists, &f, &starved).unwrap();
    let off = afmm::time_step_policy(
        &tree,
        &lists,
        &f,
        &starved,
        afmm::ExecPolicy {
            offload_pl: true,
            ..Default::default()
        },
    )
    .unwrap();
    assert!(off.t_cpu < base.t_cpu);
    assert!(off.t_gpu >= base.t_gpu);
}

/// Ops accounting sanity shared by every harness: counts recomputed on the
/// same tree are stable and proportional quantities move the right way.
#[test]
fn harness_accounting_invariants() {
    let b = nbody::plummer(10_000, 1.0, 1.0, 4008);
    let coarse = build_adaptive(&b.pos, BuildParams::with_s(512));
    let fine = build_adaptive(&b.pos, BuildParams::with_s(32));
    let mac = Mac::default();
    let cc = count_ops(&coarse, &dual_traversal(&coarse, mac));
    let cf = count_ops(&fine, &dual_traversal(&fine, mac));
    assert!(cc.p2p_interactions > cf.p2p_interactions);
    assert!(cc.m2l_ops < cf.m2l_ops);
    assert_eq!(cc.p2m_bodies, cf.p2m_bodies);
    assert!(cc.active_nodes < cf.active_nodes);
}
