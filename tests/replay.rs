//! Offline replay validation: a clean instrumented run satisfies every
//! replay invariant, hand-corrupted traces fail with the *named* invariant,
//! and `diff_traces` distinguishes identical trajectories from divergent
//! ones.

use afmm_repro::prelude::*;
use afmm_repro::telemetry::{self, EventRecord};

/// JSONL lines of a telemetry-enabled dynamic run (deterministic).
fn traced_lines(steps: usize, seed: u64, drift: bool) -> Vec<String> {
    let setup = nbody::collapsing_plummer(2500, 1.0, seed);
    let rec = Recorder::enabled();
    let sink = VecSink::new();
    rec.set_sink(sink.clone());
    let mut tracker = StrategyTracker::with_telemetry(
        GravityKernel::default(),
        FmmParams::default(),
        HeteroNode::system_a(10, 2),
        Strategy::Full,
        LbConfig {
            eps_switch_s: 2e-3,
            ..Default::default()
        },
        &setup.bodies.pos,
        Some((setup.domain_center, setup.domain_half_width)),
        rec.clone(),
    );
    let mut pos = setup.bodies.pos.clone();
    for step in 0..steps {
        tracker.step(&pos).unwrap();
        if drift && step < steps / 2 {
            for p in &mut pos {
                *p *= 0.97;
            }
        }
    }
    sink.lines()
}

fn parse(lines: &[String]) -> Vec<EventRecord> {
    lines
        .iter()
        .map(|l| EventRecord::from_json(l).expect("trace line parses"))
        .collect()
}

fn violated_invariants(records: &[EventRecord]) -> Vec<&'static str> {
    validate_trace(records, &ValidateOptions::default())
        .into_iter()
        .map(|v| v.invariant)
        .collect()
}

#[test]
fn clean_hundred_step_run_validates() {
    let records = parse(&traced_lines(100, 4242, true));
    let violations = validate_trace(&records, &ValidateOptions::default());
    assert!(
        violations.is_empty(),
        "clean run should satisfy all invariants, got: {:?}",
        violations.iter().map(|v| v.to_string()).collect::<Vec<_>>()
    );
}

#[test]
fn corrupted_seq_names_seq_monotone() {
    let mut lines = traced_lines(20, 7, true);
    // Rewind one sequence number mid-trace: replay ordering is broken.
    let idx = lines.len() / 2;
    let seq_field = lines[idx]
        .split(',')
        .next()
        .unwrap()
        .trim_start_matches('{')
        .to_string();
    lines[idx] = lines[idx].replace(&seq_field, "\"seq\":0");
    let records = parse(&lines);
    let inv = violated_invariants(&records);
    assert!(
        inv.contains(&"seq_monotone"),
        "expected seq_monotone violation, got {inv:?}"
    );
}

#[test]
fn corrupted_s_names_s_bounds() {
    let mut lines = traced_lines(30, 8, true);
    // Push S far beyond the configured s_max on one step.record.
    let mut hit = false;
    for line in lines.iter_mut() {
        if line.contains("\"name\":\"step.record\"") && line.contains("\"s\":") {
            *line = line.replacen("\"s\":", "\"s\":9999", 1);
            // "s":9999<old digits> — still valid JSON, wildly out of bounds.
            hit = true;
            break;
        }
    }
    assert!(hit, "no step.record with an s field found to corrupt");
    let records = parse(&lines);
    let inv = violated_invariants(&records);
    assert!(
        inv.contains(&"s_bounds"),
        "expected s_bounds violation, got {inv:?}"
    );
}

#[test]
fn corrupted_transition_names_transition_legality() {
    let mut lines = traced_lines(60, 9, true);
    // Forge an illegal jump: rewrite a real transition's destination to
    // "recovery" with a cause that does not permit it.
    let mut hit = false;
    for line in lines.iter_mut() {
        if line.contains("\"name\":\"lb.transition\"")
            && line.contains("\"cause\":\"search_settled\"")
        {
            *line = line
                .replacen("\"to\":\"frozen\"", "\"to\":\"recovery\"", 1)
                .replacen("\"to\":\"observation\"", "\"to\":\"recovery\"", 1)
                .replacen("\"to\":\"incremental\"", "\"to\":\"recovery\"", 1);
            hit = line.contains("\"to\":\"recovery\"");
            if hit {
                break;
            }
        }
    }
    assert!(hit, "no search_settled transition found to corrupt");
    let records = parse(&lines);
    let inv = violated_invariants(&records);
    assert!(
        inv.iter().any(|i| *i == "transition_legality"
            || *i == "recovery_cause"
            || *i == "state_continuity"),
        "expected a state-machine violation, got {inv:?}"
    );
}

#[test]
fn missing_config_is_flagged() {
    let lines: Vec<String> = traced_lines(15, 10, false)
        .into_iter()
        .filter(|l| !l.contains("\"name\":\"run.config\""))
        .collect();
    let records = parse(&lines);
    let inv = violated_invariants(&records);
    assert!(
        inv.contains(&"missing_config"),
        "expected missing_config violation, got {inv:?}"
    );
}

#[test]
fn diff_of_identical_runs_matches() {
    let a = parse(&traced_lines(40, 11, true));
    let b = parse(&traced_lines(40, 11, true));
    let d = diff_traces(&a, &b);
    assert!(
        d.is_match(),
        "identical runs should diff clean: {:?}",
        d.mismatches
    );
    assert_eq!(d.steps_a, 40);
    assert_eq!(d.steps_b, 40);
    // Determinism is byte-level, so compute ratio is exactly 1 everywhere
    // it is defined... but wall-clock timing fields are *measured*, so only
    // require it to be finite and positive.
    assert!(d.max_time_ratio.is_finite() && d.max_time_ratio > 0.0);
}

#[test]
fn diff_of_divergent_runs_reports_mismatches() {
    // Different workloads take different balancer trajectories.
    let a = parse(&traced_lines(40, 11, true));
    let b = parse(&traced_lines(25, 12, false));
    let d = diff_traces(&a, &b);
    assert_eq!(d.steps_a, 40);
    assert_eq!(d.steps_b, 25);
    assert!(!d.is_match(), "divergent runs should not match");
    assert!(!d.mismatches.is_empty());
}

#[test]
fn validate_via_file_round_trip() {
    // The same check the CI step runs: write the JSONL, read it back with
    // the streaming reader, validate.
    let lines = traced_lines(30, 13, true);
    let path =
        std::env::temp_dir().join(format!("afmm_replay_validate_{}.jsonl", std::process::id()));
    std::fs::write(&path, lines.join("\n")).unwrap();
    let records = telemetry::read_trace(&path).unwrap();
    let _ = std::fs::remove_file(&path);
    let violations = validate_trace(&records, &ValidateOptions::default());
    assert!(violations.is_empty(), "{violations:?}");
}
