//! Edge-case and adversarial tests across the stack: degenerate inputs the
//! engine must survive, and a fuzz of the load-balancer state machine with
//! hostile timing sequences.

use afmm_repro::prelude::*;
use fmm_math::Kernel;
use rand::prelude::*;
use rand::rngs::StdRng;

#[test]
fn coincident_bodies_full_pipeline() {
    // 200 coincident points + a probe: the tree bottoms out at max level,
    // the solver must still terminate and return finite softened forces.
    let mut pos = vec![Vec3::splat(0.25); 200];
    pos.push(Vec3::new(2.0, 0.0, 0.0));
    let mass = vec![1.0; pos.len()];
    let params = FmmParams {
        order: 6,
        mac: Mac::new(0.5),
        max_level: 8,
    };
    let mut engine = FmmEngine::new(GravityKernel::new(0.05), params, &pos, 8);
    let sol = engine.solve(&pos, &mass);
    assert!(sol.field.iter().all(|a| a.is_finite()));
    // The probe feels ~200/d^2 pointing at the clump.
    let probe = *sol.field.last().unwrap();
    let d = pos[0] - *pos.last().unwrap();
    let expect = d * (200.0 / d.norm().powi(3));
    assert!(
        (probe - expect).norm() < 0.05 * expect.norm(),
        "probe force {probe:?} vs expected {expect:?}"
    );
}

#[test]
fn extreme_mass_ratios() {
    let b = nbody::plummer(200, 1.0, 1.0, 5001);
    let mut mass = b.mass.clone();
    mass[0] = 1e9; // a black hole among dust
    let params = FmmParams {
        order: 6,
        mac: Mac::new(0.5),
        max_level: 21,
    };
    let mut engine = FmmEngine::new(GravityKernel::default(), params, &b.pos, 16);
    let sol = engine.solve(&b.pos, &mass);
    // Everything points roughly at the massive body.
    let heavy = b.pos[0];
    let mut aligned = 0;
    for i in 1..b.len() {
        let to_heavy = heavy - b.pos[i];
        if sol.field[i].dot(to_heavy) > 0.0 {
            aligned += 1;
        }
    }
    assert!(
        aligned > b.len() * 9 / 10,
        "only {aligned} bodies point at the mass"
    );
}

#[test]
fn two_bodies_minimal_problem() {
    let pos = vec![Vec3::ZERO, Vec3::new(3.0, 0.0, 0.0)];
    let mass = vec![2.0, 1.0];
    let mut engine = FmmEngine::new(GravityKernel::default(), FmmParams::default(), &pos, 1);
    let sol = engine.solve(&pos, &mass);
    assert!((sol.field[0].x - 1.0 / 9.0).abs() < 1e-10);
    assert!((sol.field[1].x + 2.0 / 9.0).abs() < 1e-10);
}

#[test]
fn zero_force_stokes_is_quiescent() {
    let pts = nbody::uniform_cube(300, 1.0, 5002);
    let forces = vec![0.0; 3 * 300];
    let mut engine = FmmEngine::new(
        StokesletKernel::new(1e-3, 1.0),
        FmmParams::default(),
        &pts.pos,
        32,
    );
    let sol = engine.solve(&pts.pos, &forces);
    assert!(sol.field.iter().all(|u| u.norm() == 0.0));
}

#[test]
fn bodies_on_cell_boundaries() {
    // A perfect lattice puts bodies exactly on subdivision planes; the
    // Morton convention must bin them consistently.
    let mut pos = Vec::new();
    for i in 0..6 {
        for j in 0..6 {
            for k in 0..6 {
                pos.push(Vec3::new(i as f64, j as f64, k as f64) * 0.5 - Vec3::splat(1.25));
            }
        }
    }
    let mass = vec![1.0; pos.len()];
    let params = FmmParams {
        order: 6,
        mac: Mac::new(0.5),
        max_level: 21,
    };
    let mut engine = FmmEngine::new(GravityKernel::default(), params, &pos, 8);
    let sol = engine.solve(&pos, &mass);
    let bodies = nbody::Bodies {
        pos: pos.clone(),
        vel: vec![Vec3::ZERO; pos.len()],
        mass,
    };
    let direct = nbody::direct_gravity(&bodies, 1.0, 0.0);
    let num: f64 = sol
        .field
        .iter()
        .zip(&direct)
        .map(|(a, b)| (*a - *b).norm_sq())
        .sum();
    let den: f64 = direct.iter().map(|v| v.norm_sq()).sum();
    assert!((num / den).sqrt() < 1e-4);
}

#[test]
fn balancer_survives_adversarial_timings() {
    // Feed the state machine hostile (t_cpu, t_gpu) sequences: spikes,
    // zeros, flips, NaN-free garbage. It must never panic, always leave the
    // tree valid, and keep S within its configured bounds.
    let b = nbody::plummer(3000, 1.0, 1.0, 5003);
    let node = HeteroNode::system_a(10, 2);
    let cfg = LbConfig {
        eps_switch_s: 1e-3,
        ..Default::default()
    };
    let mut rng = StdRng::seed_from_u64(5004);
    for trial in 0..5 {
        let mut engine = FmmEngine::new(GravityKernel::default(), FmmParams::default(), &b.pos, 64);
        let mut model = CostModel::new();
        let mut lb = LoadBalancer::new(Strategy::Full, cfg);
        for _ in 0..40 {
            // Occasionally observe real timings so the model stays usable.
            let counts = engine.refresh_lists();
            let flops = engine.kernel.op_flops(engine.expansion_ops());
            let t = afmm::time_step(engine.tree(), engine.lists(), &flops, &node).unwrap();
            model.observe(&counts, &t, &flops, &node);
            let (tc, tg) = match rng.random_range(0..4u32) {
                0 => (t.t_cpu, t.t_gpu),
                1 => (t.t_cpu * rng.random_range(0.0..100.0), t.t_gpu),
                2 => (t.t_cpu, t.t_gpu * rng.random_range(0.0..100.0)),
                _ => (rng.random_range(0.0..10.0), rng.random_range(0.0..10.0)),
            };
            lb.post_step(&mut engine, &model, &node, &b.pos, tc, tg);
            engine.tree().check_invariants().unwrap();
            let s = engine.tree().s_value();
            assert!(
                (cfg.s_min..=cfg.s_max).contains(&s),
                "trial {trial}: S={s} escaped bounds"
            );
        }
    }
}

#[test]
fn gravity_sim_survives_tight_binary() {
    // Two bodies nearly colliding: softening must keep the integration
    // finite through the close encounter.
    let mut bodies = nbody::Bodies::default();
    bodies.push(Vec3::ZERO, Vec3::new(0.0, 0.1, 0.0), 10.0);
    bodies.push(Vec3::new(0.05, 0.0, 0.0), Vec3::new(0.0, -0.1, 0.0), 10.0);
    for i in 0..50 {
        bodies.push(
            Vec3::new(
                (i as f64).cos() * 5.0,
                (i as f64).sin() * 5.0,
                i as f64 * 0.1 - 2.5,
            ),
            Vec3::ZERO,
            0.01,
        );
    }
    let mut sim = GravitySim::new(
        bodies,
        1.0,
        1e-4,
        0.1,
        FmmParams {
            order: 3,
            ..Default::default()
        },
        HeteroNode::system_a(4, 1),
        Strategy::Full,
        LbConfig {
            eps_switch_s: 1e-3,
            ..Default::default()
        },
        None,
    );
    for _ in 0..100 {
        sim.step().unwrap();
    }
    assert!(sim.positions().iter().all(|p| p.is_finite()));
    assert!(sim.bodies.vel.iter().all(|v| v.is_finite()));
}

#[test]
fn s_equals_one_tree_works() {
    // The finest possible decomposition: every leaf holds at most one body.
    let b = nbody::uniform_cube(100, 1.0, 5005);
    // At S=1 the tree is deep and every interaction is far-field, so the
    // expansion truncation dominates the error; order 4 lands just above the
    // 1e-3 budget on this draw while order 5 is comfortably inside it.
    let params = FmmParams {
        order: 5,
        mac: Mac::new(0.6),
        max_level: 21,
    };
    let mut engine = FmmEngine::new(GravityKernel::default(), params, &b.pos, 1);
    for id in engine.tree().visible_leaves() {
        assert!(engine.tree().node(id).count() <= 1);
    }
    let sol = engine.solve(&b.pos, &b.mass);
    let direct = nbody::direct_gravity(&b, 1.0, 0.0);
    let num: f64 = sol
        .field
        .iter()
        .zip(&direct)
        .map(|(a, d)| (*a - *d).norm_sq())
        .sum();
    let den: f64 = direct.iter().map(|v| v.norm_sq()).sum();
    assert!((num / den).sqrt() < 1e-3);
}
