//! Barrier-vs-Dag execution-policy equivalence and pipelining gates.
//!
//! The execution policy only changes how the *virtual node* schedules the
//! already-planned work — the physics must not notice. These tests pin both
//! halves of that contract: forces are bit-identical under either policy,
//! and on quick-suite-scale heterogeneous configs the dependency-driven
//! scheduler's makespan is never worse than the phase-barrier oracle.

use afmm::{ExecPolicy, SchedMode};
use afmm_repro::prelude::*;
use fmm_math::Kernel;

fn engine_at(n: usize, s: usize, seed: u64) -> (FmmEngine<GravityKernel>, Bodies) {
    let b = nbody::plummer(n, 1.0, 1.0, seed);
    let mut e = FmmEngine::new(GravityKernel::default(), FmmParams::default(), &b.pos, s);
    e.refresh_lists();
    (e, b)
}

/// The hetero configs the `dag_pipeline` perf-lab scenario gates on. All are
/// multi-core: with very few cores the barrier executor is already
/// near-serial and the Dag lowering's extra per-task overhead can cost more
/// than pipelining recovers, so the win claim lives at realistic node shapes.
const CONFIGS: [(usize, usize); 3] = [(10, 4), (10, 1), (8, 2)];

/// Forces are bit-identical under Barrier and Dag policies: the scheduler
/// choice must never leak into the physics.
#[test]
fn forces_bit_identical_under_both_policies() {
    for &(n, s, seed) in &[(500usize, 16usize, 11u64), (2_000, 32, 12), (900, 8, 13)] {
        let (mut e, b) = engine_at(n, s, seed);
        let mass = vec![1.0; n];

        e.set_exec_policy(ExecPolicy::default());
        let barrier = e.solve(&b.pos, &mass);

        e.set_exec_policy(ExecPolicy {
            mode: SchedMode::Dag,
            ..Default::default()
        });
        let dag = e.solve(&b.pos, &mass);

        assert_eq!(barrier.field.len(), dag.field.len());
        for (i, (a, d)) in barrier.field.iter().zip(&dag.field).enumerate() {
            assert!(
                a.x.to_bits() == d.x.to_bits()
                    && a.y.to_bits() == d.y.to_bits()
                    && a.z.to_bits() == d.z.to_bits(),
                "force {i} differs between policies: {a:?} vs {d:?}"
            );
        }
        for (i, (a, d)) in barrier.pot.iter().zip(&dag.pot).enumerate() {
            assert!(
                a.to_bits() == d.to_bits(),
                "potential {i} differs between policies: {a} vs {d}"
            );
        }
    }
}

/// On every quick-suite hetero config, the Dag makespan is no worse than the
/// Barrier makespan — and the CPU span strictly improves at scale, because
/// M2L tasks start as soon as their own sources' M2M finish instead of
/// waiting for the full upsweep.
#[test]
fn dag_never_worse_than_barrier_at_scale() {
    let flops = GravityKernel::default().op_flops(&ExpansionOps::new(FmmParams::default().order));
    for &(n, s) in &[(4_000usize, 32usize), (12_000, 64)] {
        let (mut e, _) = engine_at(n, s, 42);
        let mut improved = false;
        for &(cores, gpus) in &CONFIGS {
            let node = HeteroNode::system_a(cores, gpus);

            e.set_exec_policy(ExecPolicy::default());
            let bar = e.time_step(&flops, &node).unwrap();
            assert!(
                bar.phases.is_none(),
                "barrier path must not report DAG spans"
            );

            e.set_exec_policy(ExecPolicy {
                mode: SchedMode::Dag,
                ..Default::default()
            });
            let dag = e.time_step(&flops, &node).unwrap();
            assert!(dag.phases.is_some(), "dag path must report measured spans");

            assert!(
                dag.compute() <= bar.compute() * (1.0 + 1e-9),
                "n={n} s={s} {cores}C{gpus}G: dag {} > barrier {}",
                dag.compute(),
                bar.compute()
            );
            assert!(
                dag.t_cpu <= bar.t_cpu * (1.0 + 1e-9),
                "n={n} s={s} {cores}C{gpus}G: dag t_cpu {} > barrier {}",
                dag.t_cpu,
                bar.t_cpu
            );
            if dag.compute() < bar.compute() * 0.999 {
                improved = true;
            }
        }
        assert!(
            improved,
            "n={n} s={s}: Dag should beat Barrier by >0.1% somewhere"
        );
    }
}

/// The same holds with the P2M/L2P offload policy enabled: the Dag path
/// folds expansion transfers into the GPU lanes without regressing.
#[test]
fn dag_not_worse_with_offload_policy() {
    let flops = GravityKernel::default().op_flops(&ExpansionOps::new(FmmParams::default().order));
    let (mut e, _) = engine_at(6_000, 48, 7);
    let node = HeteroNode::system_a(10, 2);

    e.set_exec_policy(ExecPolicy {
        offload_pl: true,
        mode: SchedMode::Barrier,
        ..Default::default()
    });
    let bar = e.time_step(&flops, &node).unwrap();

    e.set_exec_policy(ExecPolicy {
        offload_pl: true,
        mode: SchedMode::Dag,
        ..Default::default()
    });
    let dag = e.time_step(&flops, &node).unwrap();

    assert!(
        dag.compute() <= bar.compute() * (1.0 + 1e-9),
        "offload: dag {} > barrier {}",
        dag.compute(),
        bar.compute()
    );
    // GPU lanes pipeline: per-device (p2p + expansion) chains never exceed
    // the barrier model's sum of serial maxima.
    assert!(dag.t_gpu <= bar.t_gpu * (1.0 + 1e-9));
}

/// Measured DAG phase spans are self-consistent: far-field busy time sums to
/// the CPU work the report claims, so `parallel_rate` and the replay
/// reconciliation invariant both see the same arithmetic.
#[test]
fn dag_phase_spans_reconcile_with_report() {
    let flops = GravityKernel::default().op_flops(&ExpansionOps::new(FmmParams::default().order));
    let (mut e, _) = engine_at(3_000, 32, 21);
    let node = HeteroNode::system_a(8, 2);
    e.set_exec_policy(ExecPolicy {
        mode: SchedMode::Dag,
        ..Default::default()
    });
    let t = e.time_step(&flops, &node).unwrap();
    let phases = t.phases.as_ref().expect("dag path reports spans");

    // With GPUs online the near field lives on the device lanes, so the
    // far-field spans account for every CPU core-second exactly.
    let busy = phases.far_field_busy();
    assert!(
        (busy - t.cpu_work_seconds).abs() <= 1e-9 * t.cpu_work_seconds.max(1e-12),
        "far-field span busy {} != cpu_work_seconds {}",
        busy,
        t.cpu_work_seconds
    );
    assert!(t.parallel_rate() >= 1.0 && t.parallel_rate() <= 8.0 + 1e-9);
    // Every span sits inside its lane's makespan: far-field phases within
    // the CPU span, the GPU-lane P2P phase within the GPU span.
    for (tag, sp) in phases.iter() {
        if sp.tasks > 0 {
            let lane_end = if tag == afmm::PhaseTag::P2p {
                t.t_gpu
            } else {
                t.t_cpu
            };
            assert!(
                sp.end <= lane_end * (1.0 + 1e-9),
                "{tag:?} span overruns makespan"
            );
        }
    }
}
