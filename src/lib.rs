//! # afmm-repro
//!
//! A full reproduction of **Overman, Prins, Miller & Minion, "Dynamic Load
//! Balancing of the Adaptive Fast Multipole Method in Heterogeneous
//! Systems" (IEEE IPDPSW 2013)** as a Rust workspace.
//!
//! This facade crate re-exports the workspace's public surface:
//!
//! * [`afmm`] — the AFMM engine, observational cost model, and the
//!   Search/Incremental/Observation load balancer (the paper's
//!   contribution);
//! * [`fmm_math`] — cartesian multipole/local expansions and the gravity /
//!   regularized-Stokeslet kernels;
//! * [`octree`] — the adaptive decomposition with Collapse / PushDown /
//!   Enforce_S;
//! * [`gpu_sim`] / [`sched_sim`] — the virtual heterogeneous node (simulated
//!   CUDA-like devices and an OpenMP-task-style scheduler model);
//! * [`nbody`] — workload generators, integrators and diagnostics;
//! * [`telemetry`] — structured tracing spans/events, a metrics registry,
//!   and the prediction-vs-actual cost-model audit trail.
//!
//! See `README.md` for a tour, `DESIGN.md` for the system inventory and
//! paper↔module mapping, and `EXPERIMENTS.md` for paper-vs-measured results
//! of every table and figure.
//!
//! ## Quickstart
//!
//! ```
//! use afmm_repro::prelude::*;
//!
//! // Gravitating Plummer sphere, solved by the adaptive FMM.
//! let bodies = nbody::plummer(2_000, 1.0, 1.0, 1);
//! let mut engine = FmmEngine::new(
//!     GravityKernel::default(),
//!     FmmParams::default(),
//!     &bodies.pos,
//!     48,
//! );
//! let sol = engine.solve(&bodies.pos, &bodies.mass);
//! assert_eq!(sol.field.len(), bodies.len());
//! ```

pub use afmm;
pub use fmm_math;
pub use geom;
pub use gpu_sim;
pub use nbody;
pub use octree;
pub use sched_sim;
pub use telemetry;

/// The workhorse types, importable in one line.
pub mod prelude {
    pub use afmm::{
        diff_traces, fine_grained_optimize, search_best_s_cpu_only, validate_trace, ChaosEvent,
        ChaosPlan, CostModel, FaultEvent, FaultSchedule, FmmEngine, FmmParams, GravitySim,
        HeteroNode, LbConfig, LbState, LoadBalancer, Prediction, RecoveryAction, StokesSim,
        Strategy, StrategyTracker, Supervisor, SupervisorConfig, SupervisorReport, TimedFault,
        TimingFilter, ValidateOptions,
    };
    pub use fmm_math::{ExpansionOps, GravityKernel, Kernel, StokesletKernel};
    pub use geom::{Aabb, Vec3};
    pub use gpu_sim::{GpuSpec, GpuSystem, P2pJob};
    pub use nbody::{Bodies, ElasticRing, Leapfrog};
    pub use octree::{build_adaptive, build_uniform, BuildParams, Mac, Octree};
    pub use sched_sim::{MemoryModel, SimConfig, TaskGraph};
    pub use telemetry::{
        AnomalyDetector, AuditTrail, ChromeTraceExporter, EventRecord, JsonlSink, MetricsRegistry,
        PredictionAudit, Recorder, TraceReader, Value, VecSink,
    };
}
