#!/bin/bash
# Regenerate every experiment output into results/.
set -u
cd /root/repo
R=results
run() { echo "== $1 =="; cargo run -p bench --release --bin "$1" ${3:-} > "$R/$2" 2>/dev/null; }
run fig3_adaptive_cost fig3.tsv
run fig4_uniform_gap fig4.tsv
run fig6_cpu_speedup fig6.tsv
run table1_gpu_scaling table1.tsv
run fig7_hetero_speedup fig7.tsv
run ablation_report ablations.tsv
run ext_offload_pl ext_offload.tsv
run fig10_finegrained fig10.tsv
run fig8_dynamic_strategies fig8.tsv
echo ALL EXPERIMENTS DONE
