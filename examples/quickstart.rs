//! Quickstart: solve a gravitational N-body problem with the adaptive FMM,
//! check it against direct summation, and show the heterogeneous-node
//! timing and the S knob in action.
//!
//! Run with: `cargo run --release --example quickstart`

use afmm_repro::prelude::*;
use fmm_math::Kernel;

fn main() {
    // 1. A Plummer sphere: the strongly non-uniform distribution the
    //    adaptive FMM exists for.
    let n = 20_000;
    let bodies = nbody::plummer(n, 1.0, 1.0, 7);
    println!("N = {n} bodies, Plummer distribution");

    // 2. Build the engine: expansion order 6, leaf capacity S = 64.
    let params = FmmParams::default();
    let mut engine = FmmEngine::new(GravityKernel::default(), params, &bodies.pos, 64);
    let t0 = std::time::Instant::now();
    let sol = engine.solve(&bodies.pos, &bodies.mass);
    println!(
        "FMM solve: {:.1} ms (host wall clock)",
        t0.elapsed().as_secs_f64() * 1e3
    );

    // 3. Validate a sample of bodies against O(n^2) direct summation.
    let direct = nbody::direct_gravity(&bodies, 1.0, 0.0);
    let mut num = 0.0;
    let mut den = 0.0;
    for i in (0..n).step_by(97) {
        num += (sol.field[i] - direct[i]).norm_sq();
        den += direct[i].norm_sq();
    }
    println!(
        "relative field error vs direct sum: {:.2e}",
        (num / den).sqrt()
    );

    // 4. The heterogeneous-node view: time the same solve on the virtual
    //    Test System A (10 CPU cores + 4 GPUs) at three leaf capacities and
    //    watch S shift work between the CPU far field and the GPU near
    //    field — the paper's load-balancing lever.
    let node = HeteroNode::system_a(10, 4);
    let flops = engine.kernel.op_flops(engine.expansion_ops());
    println!("\n   S    t_cpu      t_gpu      compute   (virtual 10C+4G node)");
    for s in [16usize, 128, 1024] {
        engine.rebuild(&bodies.pos, s);
        engine.refresh_lists();
        let t = afmm::time_step(engine.tree(), engine.lists(), &flops, &node).unwrap();
        println!(
            "{s:5}  {:.4} s   {:.4} s   {:.4} s",
            t.t_cpu,
            t.t_gpu,
            t.compute()
        );
    }
    println!("\nsmall S -> CPU-bound far field; large S -> GPU-bound near field.");
}
