//! A guided tour of the load balancer's machinery on one workload:
//! binary Search → Incremental → Observation, a deliberate disturbance, the
//! Enforce_S response, and a hand-invoked FineGrainedOptimize with its
//! cost-model prediction — every moving part of the paper's §IV–VII in one
//! sitting.
//!
//! Run with: `cargo run --release --example balancer_tour`

use afmm_repro::prelude::*;
use fmm_math::Kernel;

fn main() {
    let n = 30_000;
    let bodies = nbody::plummer(n, 1.0, 1.0, 29);
    let node = HeteroNode::system_a(10, 2);
    let params = FmmParams::default();
    let cfg = LbConfig {
        eps_switch_s: 2e-3,
        ..Default::default()
    };

    let mut engine = FmmEngine::new(GravityKernel::default(), params, &bodies.pos, 181);
    let mut model = CostModel::new();
    let mut balancer = LoadBalancer::new(Strategy::Full, cfg);
    let flops = engine.kernel.op_flops(engine.expansion_ops());

    println!("== phase 1: the state machine finds the balanced S ==");
    println!("step  state         S      t_cpu     t_gpu");
    let mut pos = bodies.pos.clone();
    for step in 0..20 {
        let counts = engine.refresh_lists();
        let timing = afmm::time_step(engine.tree(), engine.lists(), &flops, &node).unwrap();
        model.observe(&counts, &timing, &flops, &node);
        println!(
            "{step:4}  {:12} {:5}  {:.5} s {:.5} s",
            balancer.state().name(),
            engine.tree().s_value(),
            timing.t_cpu,
            timing.t_gpu
        );
        balancer.post_step(&mut engine, &model, &node, &pos, timing.t_cpu, timing.t_gpu);
        if balancer.state() == LbState::Observation {
            break;
        }
    }
    println!(
        "settled at S = {} in state '{}'\n",
        engine.tree().s_value(),
        balancer.state().name()
    );

    println!("== phase 2: disturb the distribution, watch Enforce_S repair it ==");
    // Crush half the cloud into a dense knot: leaves overflow.
    for (i, p) in pos.iter_mut().enumerate() {
        if i % 2 == 0 {
            *p = *p * 0.08 + Vec3::new(2.0, 2.0, 2.0);
        }
    }
    engine.rebin(&pos);
    let counts = engine.refresh_lists();
    let timing = afmm::time_step(engine.tree(), engine.lists(), &flops, &node).unwrap();
    println!(
        "after disturbance: compute {:.5} s (best was {:.5} s)",
        timing.compute(),
        balancer.best_compute()
    );
    let before_nodes = engine.tree().visible_nodes().len();
    let rep = balancer.post_step(&mut engine, &model, &node, &pos, timing.t_cpu, timing.t_gpu);
    println!(
        "balancer response: enforced={}, fgo_rounds={}, lb_time={:.5} s, visible nodes {} -> {}",
        rep.enforced,
        rep.fgo_rounds,
        rep.lb_time,
        before_nodes,
        engine.tree().visible_nodes().len()
    );
    let after = afmm::time_step(engine.tree(), engine.lists(), &flops, &node).unwrap();
    println!("compute after repair: {:.5} s\n", after.compute());
    let _ = counts;

    println!("== phase 3: FineGrainedOptimize, by hand ==");
    // Deliberately over-coarse tree: the GPU drowns in direct work.
    engine.rebuild(&pos, 1024);
    let counts = engine.refresh_lists();
    let timing = afmm::time_step(engine.tree(), engine.lists(), &flops, &node).unwrap();
    model.observe(&counts, &timing, &flops, &node);
    let before = model.predict(&counts, &node);
    println!(
        "over-coarse tree (S=1024): predicted cpu {:.5} s, gpu {:.5} s",
        before.t_cpu, before.t_gpu
    );
    let out = fine_grained_optimize(&mut engine, &model, &node, &cfg);
    println!(
        "FGO ran {} batch(es) in {:.5} s of LB time; predicted cpu {:.5} s, gpu {:.5} s",
        out.rounds, out.lb_time, out.prediction.t_cpu, out.prediction.t_gpu
    );
    let realized = afmm::time_step(engine.tree(), engine.lists(), &flops, &node).unwrap();
    println!(
        "realized after FGO: cpu {:.5} s, gpu {:.5} s (prediction error {:.1}%)",
        realized.t_cpu,
        realized.t_gpu,
        100.0 * (out.prediction.compute() - realized.compute()).abs() / realized.compute()
    );
}
