//! Visualize the paper's Figs 1 & 2: the uniform fixed-depth decomposition
//! vs the adaptive variable-depth decomposition of the same non-uniform
//! body distribution, rendered as an ASCII mid-plane slice (one character
//! per region, digit = octree level of the leaf covering that point).
//!
//! Run with: `cargo run --release --example decomposition_view`

use afmm_repro::prelude::*;
use octree::TreeStats;

const GRID: usize = 64;

/// Render the z≈0 slice: for each grid cell, the level of the visible leaf
/// containing its center (`.` when the leaf is empty).
fn render(tree: &Octree, half: f64, label: &str) {
    let mut canvas = vec![vec![' '; GRID]; GRID];
    for id in tree.visible_leaves() {
        let n = tree.node(id);
        // Does this leaf intersect the z = 0 plane?
        if (n.center.z - 0.0).abs() > n.half_width {
            continue;
        }
        let ch = if n.count() == 0 {
            '.'
        } else {
            char::from_digit(u32::from(n.level) % 16, 16).unwrap_or('#')
        };
        // Paint the leaf's footprint.
        let to_idx = |v: f64| (((v + half) / (2.0 * half)) * GRID as f64) as isize;
        let (x0, x1) = (
            to_idx(n.center.x - n.half_width),
            to_idx(n.center.x + n.half_width),
        );
        let (y0, y1) = (
            to_idx(n.center.y - n.half_width),
            to_idx(n.center.y + n.half_width),
        );
        for y in y0.max(0)..x_clamp(y1) {
            for x in x0.max(0)..x_clamp(x1) {
                canvas[y as usize][x as usize] = ch;
            }
        }
    }
    let stats = TreeStats::gather(tree);
    println!(
        "-- {label}: {} visible leaves, depth {}, largest leaf {} bodies --",
        stats.visible_leaves, stats.depth, stats.max_leaf
    );
    for row in canvas.iter().rev() {
        println!("{}", row.iter().collect::<String>());
    }
    println!();
}

fn x_clamp(v: isize) -> isize {
    v.clamp(0, GRID as isize)
}

fn main() {
    // A strongly non-uniform cloud: Plummer core + diffuse halo.
    let bodies = nbody::plummer(30_000, 0.8, 1.0, 33);
    let half = 9.0;

    // Fig 1 analogue: uniform decomposition. Depth chosen so *average*
    // occupancy matches S=64 — but the core cells overflow wildly.
    let uniform = build_uniform(&bodies.pos, 3, 1e-6);
    render(&uniform, half, "uniform (fixed depth 3, paper Fig 1)");

    // Fig 2 analogue: adaptive decomposition at S=64 — deep where dense.
    let adaptive = build_adaptive(&bodies.pos, BuildParams::with_s(64));
    render(&adaptive, half, "adaptive (S=64, paper Fig 2)");

    // The punchline in numbers.
    let u_stats = TreeStats::gather(&uniform);
    let a_stats = TreeStats::gather(&adaptive);
    println!(
        "uniform:  max leaf {:5} bodies (S target 64) -> near-field blowup",
        u_stats.max_leaf
    );
    println!(
        "adaptive: max leaf {:5} bodies, levels {}..{} -> bounded leaves everywhere",
        a_stats.max_leaf, a_stats.min_leaf_level, a_stats.depth
    );
}
