//! Two Plummer "galaxies" on a collision course, integrated with the full
//! dynamic load balancer — the time-dependent, density-rearranging workload
//! class from the paper's introduction ("simulations of colliding
//! galaxies"). The run prints the balancer's state transitions, the S it
//! settles on, and how compute time and tree shape evolve through the
//! encounter.
//!
//! Run with: `cargo run --release --example galaxy_collision [steps]`

use afmm_repro::prelude::*;
use octree::TreeStats;

fn main() {
    let steps: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(120);
    let n = 10_000;
    let g = 1.0;
    // Two clusters, each a=0.8, separated by 8, approaching at a speed that
    // produces a deep interpenetrating pass within the run.
    let bodies = nbody::two_clusters(n, 0.8, g, 8.0, 60.0, 13);
    let e0 = nbody::total_energy(&bodies, g, 0.05).total();

    let node = HeteroNode::system_a(10, 2);
    let cfg = LbConfig {
        eps_switch_s: 1e-3,
        ..Default::default()
    };
    // Cover the whole encounter within `steps`.
    let dt = 8.0 / 60.0 / steps as f64 * 1.6;
    let mut sim = GravitySim::new(
        bodies,
        g,
        dt,
        0.05,
        FmmParams::default(),
        node,
        Strategy::Full,
        cfg,
        None,
    );

    println!("step   sep      S     state         t_cpu     t_gpu     t_lb    depth leaves");
    let mut last_state = None;
    for step in 0..steps {
        let rec = sim.step().unwrap();
        // Separation of the two cluster centroids (split by body index).
        let pos = sim.positions();
        let c1: Vec3 = pos[..n / 2].iter().copied().sum::<Vec3>() / (n / 2) as f64;
        let c2: Vec3 = pos[n / 2..].iter().copied().sum::<Vec3>() / (n - n / 2) as f64;
        let stats = TreeStats::gather(sim.engine().tree());
        let state_changed = last_state != Some(rec.state);
        last_state = Some(rec.state);
        if step % 10 == 0 || state_changed {
            println!(
                "{:4}  {:6.2}  {:5}  {:12} {:.5} s {:.5} s {:.5}  {:4} {:6}",
                step,
                c1.dist(c2),
                rec.s,
                rec.state.name(),
                rec.t_cpu,
                rec.t_gpu,
                rec.t_lb,
                stats.depth,
                stats.nonempty_leaves,
            );
        }
    }
    let summary = sim.summary();
    println!(
        "\n{} steps: total compute {:.3}s, total LB {:.3}s ({:.2}% of compute)",
        summary.steps,
        summary.total_compute,
        summary.total_lb,
        100.0 * summary.lb_fraction()
    );
    let e1 = nbody::total_energy(&sim.bodies, g, 0.05).total();
    println!(
        "energy drift over the encounter: {:.2}%",
        100.0 * ((e1 - e0) / e0).abs()
    );
}
