//! Fluid dynamics at an immersed flexible boundary — the paper's second
//! application domain (method of regularized Stokeslets, Cortez et al.).
//!
//! An elastic ring is stretched into an ellipse and released in Stokes flow;
//! its spring forces drive the fluid, the fluid velocity advects the ring,
//! and the ring relaxes back toward a circle while a cloud of passive tracer
//! particles is stirred by the flow. The AFMM solves every
//! marker/tracer-to-marker interaction each step.
//!
//! Run with: `cargo run --release --example stokes_ring [steps]`

use afmm_repro::prelude::*;

fn main() {
    let steps: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(150);
    let n_ring = 600;
    let n_tracers = 3_000;

    let mut ring = ElasticRing::new(Vec3::ZERO, 1.0, n_ring, 5.0);
    ring.perturb_ellipse(1.35);
    let e0 = ring.energy();

    // Tracer cloud around the ring (zero-force points that just advect).
    let tracers = nbody::uniform_cube(n_tracers, 1.8, 17);

    let kernel = StokesletKernel::new(5e-3, 1.0);
    let params = FmmParams::default();
    // Stability: the fastest spring mode relaxes at ~2k/(4*pi*mu*eps);
    // keep dt well inside it.
    let dt = 2e-3;

    // All points (ring markers first, then tracers) go through one AFMM
    // solve per step; only ring markers carry force.
    let mut pos: Vec<Vec3> = ring.positions().to_vec();
    pos.extend_from_slice(&tracers.pos);
    let mut engine = FmmEngine::new(kernel, params, &pos, 32);

    println!("step   ring_energy   aspect   max|u|     tree_depth");
    for step in 0..steps {
        let mut forces = ring.forces();
        forces.resize(3 * pos.len(), 0.0); // tracers are force-free
        let sol = engine.solve(&pos, &forces);

        // Advect everything with the computed Stokes velocities.
        for (p, u) in pos.iter_mut().zip(&sol.field) {
            *p += *u * dt;
        }
        ring.positions_mut().copy_from_slice(&pos[..n_ring]);
        engine.rebin(&pos);
        engine.tree_mut().enforce_s();

        if step % 15 == 0 {
            // Aspect ratio of the ring's bounding box in the xy-plane.
            let (mut xmin, mut xmax, mut ymin, mut ymax) = (f64::MAX, f64::MIN, f64::MAX, f64::MIN);
            for p in ring.positions() {
                xmin = xmin.min(p.x);
                xmax = xmax.max(p.x);
                ymin = ymin.min(p.y);
                ymax = ymax.max(p.y);
            }
            let umax = sol.field.iter().map(|u| u.norm()).fold(0.0, f64::max);
            println!(
                "{:4}   {:10.5}   {:6.3}   {:8.5}   {}",
                step,
                ring.energy(),
                (xmax - xmin) / (ymax - ymin),
                umax,
                octree::TreeStats::gather(engine.tree()).depth,
            );
        }
    }
    let e1 = ring.energy();
    println!(
        "\nelastic energy relaxed {:.1}% (from {e0:.4} to {e1:.4}); \
         the ring rounds itself out through the fluid.",
        100.0 * (1.0 - e1 / e0)
    );
    assert!(e1 < e0, "the ring must relax");
}
